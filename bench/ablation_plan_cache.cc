// Ablation: the statement/plan cache (paper §VI future work — "a better
// caching strategy ... so that the monitoring scales better when dealing
// with most simple queries").
//
// Grid: {monitoring off, on} x {plan cache off, on} over repeated
// primary-key point selects. The cache removes the parse/bind/plan work
// from every repeated statement; the fixed monitoring cost then makes up
// a larger share of a much shorter statement — the paper's "monitoring
// keeps the lower bound of execution time" effect, and the reason the
// monitor itself needs to be cheap.

#include "bench/bench_util.h"
#include "workload/nref.h"

namespace imon {
namespace {

using bench::MustExec;
using bench::Scaled;
using engine::Database;
using engine::DatabaseOptions;

struct Cell {
  double micros_per_stmt = 0;
  double monitor_share_pct = 0;
  int64_t cache_hits = 0;
};

Cell RunCell(bool monitoring, bool plan_cache, int64_t statements,
             const workload::NrefConfig& nref) {
  DatabaseOptions options;
  options.monitor.enabled = monitoring;
  options.monitor.stats_sample_every = 0;
  options.plan_cache_capacity = plan_cache ? 256 : 0;
  Database db(options);
  if (!workload::SetupNref(&db, nref).ok()) std::exit(1);

  // Warm-up (fills caches, including the plan cache when enabled).
  for (int64_t i = 0; i < 200; ++i) {
    MustExec(&db, workload::PointQuery(i % 16));
  }

  // Hot loop over 16 distinct cached statements.
  int64_t start = MonotonicNanos();
  for (int64_t i = 0; i < statements; ++i) {
    MustExec(&db, workload::PointQuery(i % 16));
  }
  int64_t elapsed = MonotonicNanos() - start;

  Cell cell;
  cell.micros_per_stmt =
      static_cast<double>(elapsed) / 1e3 / static_cast<double>(statements);
  if (monitoring) {
    auto counters = db.monitor()->counters();
    cell.monitor_share_pct =
        100.0 * static_cast<double>(counters.total_monitor_nanos) /
        static_cast<double>(elapsed);
  }
  cell.cache_hits = db.plan_cache_stats().hits;
  return cell;
}

}  // namespace
}  // namespace imon

int main() {
  using namespace imon;
  bench::PrintHeader("ablation_plan_cache",
                     "statement cache x monitoring grid (paper §VI)");

  workload::NrefConfig nref;
  nref.proteins = 2000;
  nref.taxa = 100;
  const int64_t statements = Scaled(30000);

  struct RowDef {
    const char* name;
    bool monitoring;
    bool cache;
  };
  const RowDef rows[] = {
      {"no monitor, no cache", false, false},
      {"monitor,    no cache", true, false},
      {"no monitor, cache", false, true},
      {"monitor,    cache", true, true},
  };

  std::printf("\n%lld point selects over 16 hot statements\n\n",
              static_cast<long long>(statements));
  std::printf("%-24s %14s %16s %12s\n", "configuration", "us/stmt",
              "monitor share", "cache hits");
  double base = 0, cached = 0;
  for (const RowDef& def : rows) {
    Cell cell = RunCell(def.monitoring, def.cache, statements, nref);
    if (!def.monitoring && !def.cache) base = cell.micros_per_stmt;
    if (!def.monitoring && def.cache) cached = cell.micros_per_stmt;
    std::printf("%-24s %14.2f %15.1f%% %12lld\n", def.name,
                cell.micros_per_stmt, cell.monitor_share_pct,
                static_cast<long long>(cell.cache_hits));
  }
  if (cached > 0) {
    std::printf("\nplan cache speedup on repeated statements: %.1fx\n",
                base / cached);
  }
  std::printf("(shorter statements => the constant monitoring cost is a "
              "larger share — why the paper wants cheap sensors)\n");
  return 0;
}
