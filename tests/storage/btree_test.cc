#include "storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "storage/key_codec.h"

namespace imon::storage {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : disk_(), pool_(&disk_, 256) {
    file_ = disk_.CreateFile();
    tree_ = std::make_unique<BTree>(&pool_, file_);
    EXPECT_TRUE(tree_->Create().ok());
  }

  static std::string IntKey(int64_t v) { return EncodeKey({Value::Int(v)}); }

  std::vector<std::pair<int64_t, std::string>> CollectAll() {
    std::vector<std::pair<int64_t, std::string>> out;
    auto cursor = tree_->SeekToFirst();
    EXPECT_TRUE(cursor.ok());
    while (cursor->Valid()) {
      auto key = DecodeKey(std::string(cursor->user_key()), 1);
      EXPECT_TRUE(key.ok());
      out.emplace_back((*key)[0].AsInt(), std::string(cursor->payload()));
      EXPECT_TRUE(cursor->Next().ok());
    }
    return out;
  }

  DiskManager disk_;
  BufferPool pool_;
  FileId file_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTreeHasNoEntries) {
  auto cursor = tree_->SeekToFirst();
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor->Valid());
  auto stats = tree_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries, 0);
  EXPECT_EQ(stats->height, 1u);
}

TEST_F(BTreeTest, InsertAndScanInOrder) {
  for (int64_t v : {5, 1, 9, 3, 7}) {
    ASSERT_TRUE(tree_->Insert(IntKey(v), "p" + std::to_string(v)).ok());
  }
  auto all = CollectAll();
  ASSERT_EQ(all.size(), 5u);
  std::vector<int64_t> keys;
  for (auto& [k, p] : all) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 5, 7, 9}));
  EXPECT_EQ(all[0].second, "p1");
}

TEST_F(BTreeTest, DuplicateKeysAllKept) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(42), "dup" + std::to_string(i)).ok());
  }
  auto all = CollectAll();
  EXPECT_EQ(all.size(), 10u);
  for (auto& [k, p] : all) EXPECT_EQ(k, 42);
}

TEST_F(BTreeTest, SeekLowerBound) {
  for (int64_t v = 0; v < 100; v += 10) {
    ASSERT_TRUE(tree_->Insert(IntKey(v), "x").ok());
  }
  auto cursor = tree_->SeekLowerBound(IntKey(35));
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(cursor->Valid());
  auto key = DecodeKey(std::string(cursor->user_key()), 1);
  EXPECT_EQ((*key)[0].AsInt(), 40);
  // Exact hit.
  cursor = tree_->SeekLowerBound(IntKey(50));
  ASSERT_TRUE(cursor->Valid());
  key = DecodeKey(std::string(cursor->user_key()), 1);
  EXPECT_EQ((*key)[0].AsInt(), 50);
  // Past the end.
  cursor = tree_->SeekLowerBound(IntKey(1000));
  EXPECT_FALSE(cursor->Valid());
}

TEST_F(BTreeTest, DeleteSpecificPayload) {
  ASSERT_TRUE(tree_->Insert(IntKey(1), "a").ok());
  ASSERT_TRUE(tree_->Insert(IntKey(1), "b").ok());
  ASSERT_TRUE(tree_->Insert(IntKey(1), "c").ok());
  ASSERT_TRUE(tree_->Delete(IntKey(1), "b").ok());
  auto all = CollectAll();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].second, "a");
  EXPECT_EQ(all[1].second, "c");
  EXPECT_TRUE(tree_->Delete(IntKey(1), "zz").IsNotFound());
  EXPECT_TRUE(tree_->Delete(IntKey(5), "a").IsNotFound());
}

TEST_F(BTreeTest, ManyInsertsForceMultiLevelTree) {
  constexpr int kCount = 20000;
  std::vector<int64_t> order(kCount);
  for (int i = 0; i < kCount; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), std::mt19937(3));
  for (int64_t v : order) {
    ASSERT_TRUE(tree_->Insert(IntKey(v), std::to_string(v)).ok());
  }
  auto stats = tree_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries, kCount);
  EXPECT_GE(stats->height, 2u);

  auto all = CollectAll();
  ASSERT_EQ(all.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(all[i].first, i);
    ASSERT_EQ(all[i].second, std::to_string(i));
  }
}

TEST_F(BTreeTest, SequentialAndReverseInsertsStaySorted) {
  for (int64_t v = 0; v < 3000; ++v)
    ASSERT_TRUE(tree_->Insert(IntKey(v), "s").ok());
  for (int64_t v = 6000; v > 3000; --v)
    ASSERT_TRUE(tree_->Insert(IntKey(v), "r").ok());
  auto all = CollectAll();
  ASSERT_EQ(all.size(), 6000u);
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_LE(all[i - 1].first, all[i].first);
  }
}

TEST_F(BTreeTest, TextKeysWithVariableLength) {
  std::mt19937 rng(11);
  std::vector<std::string> words;
  for (int i = 0; i < 5000; ++i) {
    std::string w(1 + rng() % 40, ' ');
    for (char& c : w) c = static_cast<char>('a' + rng() % 26);
    words.push_back(w);
    ASSERT_TRUE(tree_->Insert(EncodeKey({Value::Text(w)}), "x").ok());
  }
  std::sort(words.begin(), words.end());
  auto cursor = tree_->SeekToFirst();
  ASSERT_TRUE(cursor.ok());
  size_t i = 0;
  while (cursor->Valid()) {
    auto key = DecodeKey(std::string(cursor->user_key()), 1);
    ASSERT_TRUE(key.ok());
    ASSERT_EQ((*key)[0].AsText(), words[i]) << i;
    ++i;
    ASSERT_TRUE(cursor->Next().ok());
  }
  EXPECT_EQ(i, words.size());
}

TEST_F(BTreeTest, CompositeKeyRangeScan) {
  // (table_id, page) composite keys: scan all entries of table 2.
  for (int64_t t = 1; t <= 3; ++t) {
    for (int64_t p = 0; p < 50; ++p) {
      ASSERT_TRUE(
          tree_->Insert(EncodeKey({Value::Int(t), Value::Int(p)}), "e").ok());
    }
  }
  std::string lower = EncodeKey({Value::Int(2)});
  auto cursor = tree_->SeekLowerBound(lower);
  ASSERT_TRUE(cursor.ok());
  int count = 0;
  while (cursor->Valid()) {
    auto key = DecodeKey(std::string(cursor->user_key()), 2);
    ASSERT_TRUE(key.ok());
    if ((*key)[0].AsInt() != 2) break;
    ++count;
    ASSERT_TRUE(cursor->Next().ok());
  }
  EXPECT_EQ(count, 50);
}

TEST_F(BTreeTest, RandomizedMirrorsMultimap) {
  std::mt19937 rng(123);
  std::multimap<int64_t, std::string> model;
  for (int step = 0; step < 8000; ++step) {
    int64_t key = rng() % 500;
    if (model.empty() || rng() % 4 != 0) {
      std::string payload = "v" + std::to_string(step);
      ASSERT_TRUE(tree_->Insert(IntKey(key), payload).ok());
      model.emplace(key, payload);
    } else {
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(tree_->Delete(IntKey(key), it->second).ok());
        model.erase(it);
      } else {
        ASSERT_TRUE(tree_->Delete(IntKey(key), "absent").IsNotFound());
      }
    }
  }
  auto all = CollectAll();
  ASSERT_EQ(all.size(), model.size());
  // Same multiset of (key, payload).
  std::multiset<std::pair<int64_t, std::string>> expect(model.begin(),
                                                        model.end());
  std::multiset<std::pair<int64_t, std::string>> got(all.begin(), all.end());
  EXPECT_EQ(expect, got);
  auto stats = tree_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries, static_cast<int64_t>(model.size()));
}

TEST_F(BTreeTest, LargePayloadsRejectedBeyondHalfPage) {
  std::string huge(kPageSize, 'h');
  EXPECT_FALSE(tree_->Insert(IntKey(1), huge).ok());
  std::string fits(1000, 'f');
  EXPECT_TRUE(tree_->Insert(IntKey(1), fits).ok());
}

}  // namespace
}  // namespace imon::storage
