#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace imon::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(), pool_(&disk_, 4) { file_ = disk_.CreateFile(); }
  DiskManager disk_;
  BufferPool pool_;
  FileId file_;
};

TEST_F(BufferPoolTest, NewPageIsZeroedAndPinned) {
  auto guard = pool_.New(file_);
  ASSERT_TRUE(guard.ok());
  PageView view = guard->Read();
  EXPECT_EQ(view.type(), PageType::kFree);
  EXPECT_EQ(disk_.NumPages(file_), 1u);
}

TEST_F(BufferPoolTest, WriteSurvivesEviction) {
  PageId pid;
  {
    auto guard = pool_.New(file_);
    ASSERT_TRUE(guard.ok());
    pid = guard->page_id();
    PageView view = guard->Write();
    view.Init(PageType::kHeap);
    view.Insert("persistent");
  }
  // Evict by filling the pool with other pages.
  for (int i = 0; i < 8; ++i) {
    auto g = pool_.New(file_);
    ASSERT_TRUE(g.ok());
  }
  auto back = pool_.Fetch(pid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Read().Get(0), "persistent");
}

TEST_F(BufferPoolTest, FetchMissesThenHits) {
  PageId pid;
  {
    auto g = pool_.New(file_);
    pid = g->page_id();
  }
  auto before = pool_.stats();
  {
    auto g = pool_.Fetch(pid);  // hit: still resident
    ASSERT_TRUE(g.ok());
  }
  auto after = pool_.stats();
  EXPECT_EQ(after.logical_reads, before.logical_reads + 1);
  EXPECT_EQ(after.physical_reads, before.physical_reads);
}

TEST_F(BufferPoolTest, AllPinnedIsResourceExhausted) {
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < pool_.capacity(); ++i) {
    auto g = pool_.New(file_);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(g.TakeValue()));
  }
  auto overflow = pool_.New(file_);
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  guards.clear();
  EXPECT_TRUE(pool_.New(file_).ok());
}

TEST_F(BufferPoolTest, LruEvictsColdestPage) {
  std::vector<PageId> pids;
  for (int i = 0; i < 4; ++i) {
    auto g = pool_.New(file_);
    pids.push_back(g->page_id());
  }
  // Touch pages 1..3 so page 0 is coldest.
  for (int i = 1; i < 4; ++i) {
    auto g = pool_.Fetch(pids[i]);
    ASSERT_TRUE(g.ok());
  }
  auto before = pool_.stats();
  {
    auto g = pool_.New(file_);  // forces one eviction
    ASSERT_TRUE(g.ok());
  }
  auto mid = pool_.stats();
  EXPECT_EQ(mid.evictions, before.evictions + 1);
  // Page 0 must now be a physical read again; page 3 still resident.
  {
    auto g = pool_.Fetch(pids[3]);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool_.stats().physical_reads, mid.physical_reads);
  {
    auto g = pool_.Fetch(pids[0]);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool_.stats().physical_reads, mid.physical_reads + 1);
}

TEST_F(BufferPoolTest, FetchUnknownPageFails) {
  EXPECT_FALSE(pool_.Fetch(PageId{file_, 42}).ok());
  EXPECT_FALSE(pool_.Fetch(PageId{9999, 0}).ok());
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyPages) {
  PageId pid;
  {
    auto g = pool_.New(file_);
    pid = g->page_id();
    g->Write().Init(PageType::kHeap);
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  char raw[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(pid, raw).ok());
  EXPECT_EQ(PageView(raw).type(), PageType::kHeap);
}

TEST_F(BufferPoolTest, PurgeDropsCachedPagesOfFile) {
  auto g = pool_.New(file_);
  PageId pid = g->page_id();
  g->Release();
  pool_.Purge(file_);
  auto before = pool_.stats();
  auto again = pool_.Fetch(pid);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool_.stats().physical_reads, before.physical_reads + 1);
}

TEST_F(BufferPoolTest, AllPinnedErrorNamesPageShardAndCapacity) {
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < pool_.capacity(); ++i) {
    auto g = pool_.New(file_);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(g.TakeValue()));
  }
  auto overflow = pool_.New(file_);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  std::string msg(overflow.status().message());
  // The message must name the page that could not be pinned, the shard
  // whose frames were exhausted, and the overall pool geometry.
  EXPECT_NE(msg.find("cannot pin page"), std::string::npos) << msg;
  EXPECT_NE(msg.find(std::to_string(file_) + ":4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("shard"), std::string::npos) << msg;
  EXPECT_NE(msg.find("pool capacity 4"), std::string::npos) << msg;
}

TEST_F(BufferPoolTest, LongScanDoesNotEvictRepeatedlyHitPages) {
  // Warm three pages into the protected (hot) segment: a page becomes hot
  // on its second reference.
  std::vector<PageId> hot;
  for (int i = 0; i < 3; ++i) {
    auto g = pool_.New(file_);
    ASSERT_TRUE(g.ok());
    hot.push_back(g->page_id());
  }
  for (const PageId& pid : hot) ASSERT_TRUE(pool_.Fetch(pid).ok());

  // A long sequential scan of one-touch pages must recycle only the
  // probationary frame, never the hot set.
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(pool_.New(file_).ok());

  auto before = pool_.stats();
  for (const PageId& pid : hot) ASSERT_TRUE(pool_.Fetch(pid).ok());
  auto after = pool_.stats();
  EXPECT_EQ(after.physical_reads, before.physical_reads)
      << "scan evicted pages with recent repeated hits";
}

TEST(BufferPoolShardingTest, UniformWorkloadBalancesShards) {
  DiskManager disk;
  BufferPool pool(&disk, 512, 8);
  FileId f = disk.CreateFile();
  ASSERT_EQ(pool.shard_count(), 8u);

  constexpr int kPages = 400;
  for (int i = 0; i < kPages; ++i) ASSERT_TRUE(pool.New(f).ok());

  auto infos = pool.ShardInfos();
  ASSERT_EQ(infos.size(), 8u);
  size_t resident = 0;
  size_t capacity = 0;
  for (const auto& info : infos) {
    resident += info.resident_pages;
    capacity += info.capacity;
  }
  EXPECT_EQ(resident, static_cast<size_t>(kPages));
  EXPECT_EQ(capacity, 512u);
  const double mean = static_cast<double>(kPages) / 8.0;
  for (size_t i = 0; i < infos.size(); ++i) {
    EXPECT_LE(static_cast<double>(infos[i].resident_pages), 2.0 * mean)
        << "shard " << i << " holds " << infos[i].resident_pages
        << " pages, more than 2x the mean of " << mean;
  }
}

TEST(BufferPoolShardingTest, ExhaustingOneShardLeavesOthersUsable) {
  DiskManager disk;
  BufferPool pool(&disk, 16, 4);  // 4 frames per shard
  FileId f = disk.CreateFile();

  // Collect 5 pages that hash to shard 0 and one page from another shard.
  std::vector<PageId> shard0;
  PageId other{};
  bool have_other = false;
  while (shard0.size() < 5 || !have_other) {
    auto g = pool.New(f);
    ASSERT_TRUE(g.ok());
    PageId pid = g->page_id();
    if (pool.ShardFor(pid) == 0) {
      if (shard0.size() < 5) shard0.push_back(pid);
    } else if (!have_other) {
      other = pid;
      have_other = true;
    }
  }

  std::vector<PageGuard> pins;
  for (size_t i = 0; i < 4; ++i) {
    auto g = pool.Fetch(shard0[i]);
    ASSERT_TRUE(g.ok());
    pins.push_back(std::move(g.TakeValue()));
  }
  auto overflow = pool.Fetch(shard0[4]);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(std::string(overflow.status().message()).find("shard 0"),
            std::string::npos);
  // Other shards are unaffected by shard 0 being fully pinned.
  EXPECT_TRUE(pool.Fetch(other).ok());
  pins.clear();
  EXPECT_TRUE(pool.Fetch(shard0[4]).ok());
}

TEST(BufferPoolShardingTest, ConcurrentPinnersExhaustShardGracefully) {
  DiskManager disk;
  BufferPool pool(&disk, 16, 4);  // 4 frames per shard
  FileId f = disk.CreateFile();

  std::vector<PageId> shard0;
  while (shard0.size() < 6) {
    auto g = pool.New(f);
    ASSERT_TRUE(g.ok());
    if (pool.ShardFor(g->page_id()) == 0) shard0.push_back(g->page_id());
  }

  // Each thread repeatedly pins all six shard-0 pages at once. At most four
  // distinct pages fit in the shard, so every iteration must see graceful
  // ResourceExhausted failures rather than crashes or deadlocks.
  std::atomic<int> failures{0};
  std::atomic<bool> wrong_code{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 25; ++iter) {
        std::vector<PageGuard> pins;
        for (const PageId& pid : shard0) {
          auto g = pool.Fetch(pid);
          if (g.ok()) {
            pins.push_back(std::move(g.TakeValue()));
          } else {
            if (g.status().code() != StatusCode::kResourceExhausted) {
              wrong_code.store(true);
            }
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(failures.load(), 0);
  EXPECT_FALSE(wrong_code.load());
  // All pins released: the shard is usable again.
  EXPECT_TRUE(pool.Fetch(shard0[0]).ok());
}

TEST(DiskManagerTest, CountsPhysicalIo) {
  DiskManager disk;
  FileId f = disk.CreateFile();
  auto page_no = disk.AllocatePage(f);
  ASSERT_TRUE(page_no.ok());
  char buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  ASSERT_TRUE(disk.WritePage(PageId{f, *page_no}, buf).ok());
  char out[kPageSize];
  ASSERT_TRUE(disk.ReadPage(PageId{f, *page_no}, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
  auto stats = disk.stats();
  EXPECT_EQ(stats.physical_reads, 1);
  EXPECT_EQ(stats.physical_writes, 1);
  EXPECT_EQ(stats.pages_allocated, 1);
}

TEST(DiskManagerTest, DeleteFileInvalidatesPages) {
  DiskManager disk;
  FileId f = disk.CreateFile();
  auto p = disk.AllocatePage(f);
  ASSERT_TRUE(p.ok());
  disk.DeleteFile(f);
  char buf[kPageSize];
  EXPECT_FALSE(disk.ReadPage(PageId{f, *p}, buf).ok());
  EXPECT_EQ(disk.NumPages(f), 0u);
}

TEST(DiskManagerTest, TotalPagesAcrossFiles) {
  DiskManager disk;
  FileId a = disk.CreateFile();
  FileId b = disk.CreateFile();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(disk.AllocatePage(a).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(disk.AllocatePage(b).ok());
  EXPECT_EQ(disk.TotalPages(), 5);
  EXPECT_EQ(disk.TotalPagesIn({a}), 3);
  EXPECT_EQ(disk.TotalPagesIn({a, b}), 5);
}

TEST(DiskManagerTest, SimulatedLatencySlowsIo) {
  DiskManager disk(200000);  // 200us per access
  FileId f = disk.CreateFile();
  auto p = disk.AllocatePage(f);
  char buf[kPageSize];
  int64_t start = MonotonicNanos();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(disk.ReadPage(PageId{f, *p}, buf).ok());
  int64_t elapsed = MonotonicNanos() - start;
  EXPECT_GE(elapsed, 5 * 200000);
}

}  // namespace
}  // namespace imon::storage
