#include "storage/key_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace imon::storage {
namespace {

std::string Enc(const Value& v) {
  std::string out;
  EncodeKeyValue(v, &out);
  return out;
}

TEST(KeyCodecTest, IntOrderPreserved) {
  std::vector<int64_t> ints = {INT64_MIN, -100, -1, 0, 1, 42, INT64_MAX};
  for (size_t i = 0; i + 1 < ints.size(); ++i) {
    EXPECT_LT(Enc(Value::Int(ints[i])), Enc(Value::Int(ints[i + 1])))
        << ints[i] << " vs " << ints[i + 1];
  }
}

TEST(KeyCodecTest, DoubleOrderPreserved) {
  std::vector<double> ds = {-1e308, -2.5, -1e-9, 0.0, 1e-9, 1.0, 3.14, 1e308};
  for (size_t i = 0; i + 1 < ds.size(); ++i) {
    EXPECT_LT(Enc(Value::Double(ds[i])), Enc(Value::Double(ds[i + 1])));
  }
}

TEST(KeyCodecTest, NegativeZeroEqualsPositiveZero) {
  EXPECT_EQ(Enc(Value::Double(-0.0)), Enc(Value::Double(0.0)));
}

TEST(KeyCodecTest, TextOrderPreservedIncludingNulBytes) {
  std::vector<std::string> ss = {"", std::string("\0", 1), "a",
                                 std::string("a\0b", 3), "ab", "b"};
  for (size_t i = 0; i + 1 < ss.size(); ++i) {
    EXPECT_LT(Enc(Value::Text(ss[i])), Enc(Value::Text(ss[i + 1])))
        << i;
  }
}

TEST(KeyCodecTest, NullSortsBeforeEverything) {
  EXPECT_LT(Enc(Value::Null()), Enc(Value::Int(INT64_MIN)));
  EXPECT_LT(Enc(Value::Null()), Enc(Value::Text("")));
  EXPECT_LT(Enc(Value::Null()), Enc(Value::Double(-1e308)));
}

TEST(KeyCodecTest, PrefixFreeAcrossDistinctValues) {
  // No encoding is a strict prefix of a different value's encoding —
  // required by the B-Tree's range upper-bound test.
  std::vector<Value> vals = {Value::Null(),      Value::Int(1),
                             Value::Int(256),    Value::Double(1.5),
                             Value::Text(""),    Value::Text("a"),
                             Value::Text("ab"),  Value::Text("abc")};
  for (const auto& a : vals) {
    for (const auto& b : vals) {
      if (a.Compare(b) == 0) continue;
      std::string ea = Enc(a), eb = Enc(b);
      EXPECT_FALSE(ea.size() < eb.size() && eb.substr(0, ea.size()) == ea)
          << a.ToString() << " prefixes " << b.ToString();
    }
  }
}

TEST(KeyCodecTest, CompositeKeyOrder) {
  Row a = {Value::Int(1), Value::Text("b")};
  Row b = {Value::Int(1), Value::Text("c")};
  Row c = {Value::Int(2), Value::Text("a")};
  EXPECT_LT(EncodeKey(a), EncodeKey(b));
  EXPECT_LT(EncodeKey(b), EncodeKey(c));
}

class KeyCodecRoundTrip : public ::testing::TestWithParam<Value> {};

TEST_P(KeyCodecRoundTrip, DecodesBack) {
  const Value& v = GetParam();
  std::string enc = Enc(v);
  size_t offset = 0;
  auto r = DecodeKeyValue(enc, &offset);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(offset, enc.size());
  if (v.is_null()) {
    EXPECT_TRUE(r->is_null());
  } else {
    EXPECT_EQ(r->Compare(v), 0);
    EXPECT_EQ(r->type(), v.type());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, KeyCodecRoundTrip,
    ::testing::Values(Value::Null(), Value::Int(0), Value::Int(-42),
                      Value::Int(INT64_MIN), Value::Int(INT64_MAX),
                      Value::Double(0.0), Value::Double(-2.25),
                      Value::Double(6.02e23), Value::Text(""),
                      Value::Text("nref"),
                      Value::Text(std::string("a\0b\0\0c", 6))));

// Keys inside one index column have a single type (the engine casts before
// encoding), so sort agreement is checked per type.
TEST(KeyCodecTest, RandomizedSortAgreementPerType) {
  std::mt19937_64 rng(42);
  std::vector<std::vector<Value>> pools(3);
  for (int i = 0; i < 2000; ++i) {
    pools[0].push_back(Value::Int(static_cast<int64_t>(rng()) % 10000));
    pools[1].push_back(
        Value::Double((static_cast<double>(rng() % 20000) - 10000) / 7));
    std::string s;
    size_t len = rng() % 12;
    for (size_t j = 0; j < len; ++j)
      s.push_back(static_cast<char>('a' + rng() % 26));
    pools[2].push_back(Value::Text(s));
  }
  for (auto& vals : pools) {
    std::vector<Value> by_value = vals;
    std::sort(by_value.begin(), by_value.end());
    std::vector<Value> by_encoding = vals;
    std::sort(by_encoding.begin(), by_encoding.end(),
              [](const Value& a, const Value& b) { return Enc(a) < Enc(b); });
    for (size_t i = 0; i < vals.size(); ++i) {
      ASSERT_EQ(by_value[i].Compare(by_encoding[i]), 0) << "at " << i;
    }
  }
}

TEST(KeyCodecTest, DecodeRejectsCorruption) {
  size_t offset = 0;
  EXPECT_FALSE(DecodeKeyValue("", &offset).ok());
  offset = 0;
  EXPECT_FALSE(DecodeKeyValue("\x01\x00\x00", &offset).ok());  // short int
  offset = 0;
  EXPECT_FALSE(DecodeKeyValue("\x03unterminated", &offset).ok());
  offset = 0;
  EXPECT_FALSE(DecodeKeyValue("\x7F", &offset).ok());  // bad tag
}

}  // namespace
}  // namespace imon::storage
