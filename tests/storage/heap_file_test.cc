#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace imon::storage {
namespace {

Row MakeRow(int64_t id, const std::string& text) {
  return {Value::Int(id), Value::Text(text)};
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : disk_(), pool_(&disk_, 64) {
    file_ = disk_.CreateFile();
    heap_ = std::make_unique<HeapFile>(&pool_, file_, /*main_page_target=*/4);
    EXPECT_TRUE(heap_->Initialize().ok());
  }
  DiskManager disk_;
  BufferPool pool_;
  FileId file_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, InsertGetRoundTrip) {
  auto rid = heap_->Insert(MakeRow(1, "one"));
  ASSERT_TRUE(rid.ok());
  auto row = heap_->Get(*rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].AsInt(), 1);
  EXPECT_EQ((*row)[1].AsText(), "one");
}

TEST_F(HeapFileTest, GetMissingRowIsNotFound) {
  EXPECT_TRUE(heap_->Get(Rid{0, 5}).status().IsNotFound());
}

TEST_F(HeapFileTest, DeleteRemovesRow) {
  auto rid = heap_->Insert(MakeRow(1, "x"));
  ASSERT_TRUE(heap_->Delete(*rid).ok());
  EXPECT_TRUE(heap_->Get(*rid).status().IsNotFound());
  EXPECT_TRUE(heap_->Delete(*rid).IsNotFound());
}

TEST_F(HeapFileTest, UpdateInPlace) {
  auto rid = heap_->Insert(MakeRow(1, "before"));
  auto new_rid = heap_->Update(*rid, MakeRow(1, "aft"));
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(new_rid->page_no, rid->page_no);
  auto row = heap_->Get(*new_rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsText(), "aft");
}

TEST_F(HeapFileTest, UpdateRelocatesWhenGrown) {
  // Fill the first page so a grown row cannot stay in place.
  std::vector<Rid> rids;
  for (int i = 0; i < 500; ++i) {
    auto rid = heap_->Insert(MakeRow(i, std::string(100, 'a')));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  auto moved = heap_->Update(rids[0], MakeRow(0, std::string(5000, 'z')));
  ASSERT_TRUE(moved.ok());
  auto row = heap_->Get(*moved);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsText().size(), 5000u);
}

TEST_F(HeapFileTest, ScanVisitsAllLiveRows) {
  std::map<int64_t, std::string> expected;
  for (int i = 0; i < 200; ++i) {
    std::string text = "row" + std::to_string(i);
    ASSERT_TRUE(heap_->Insert(MakeRow(i, text)).ok());
    expected[i] = text;
  }
  std::map<int64_t, std::string> seen;
  ASSERT_TRUE(heap_
                  ->Scan([&](Rid, const Row& row) {
                    seen[row[0].AsInt()] = row[1].AsText();
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, expected);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(heap_->Insert(MakeRow(i, "r")).ok());
  int count = 0;
  ASSERT_TRUE(heap_
                  ->Scan([&](Rid, const Row&) {
                    ++count;
                    return count < 3;
                  })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST_F(HeapFileTest, OverflowPagesAppearBeyondMainAllocation) {
  // main_page_target = 4; each ~100B row consumes ~112B: ~72 rows/page.
  // Insert enough for ~10 pages.
  for (int i = 0; i < 700; ++i) {
    ASSERT_TRUE(heap_->Insert(MakeRow(i, std::string(90, 'p'))).ok());
  }
  auto stats = heap_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->main_pages, 4u);
  EXPECT_GT(stats->overflow_pages, 3u);
  EXPECT_EQ(stats->live_rows, 700);
}

TEST_F(HeapFileTest, NoOverflowWhileWithinMainPages) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(heap_->Insert(MakeRow(i, "small")).ok());
  }
  auto stats = heap_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->overflow_pages, 0u);
  EXPECT_EQ(stats->live_rows, 50);
}

TEST_F(HeapFileTest, RidPackUnpackRoundTrip) {
  Rid rid{123456, 789};
  Rid back = Rid::Unpack(rid.Pack());
  EXPECT_EQ(back, rid);
}

TEST_F(HeapFileTest, RandomizedMirrorsStdMap) {
  std::mt19937 rng(99);
  std::map<int64_t, std::pair<Rid, std::string>> live;
  int64_t next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    int action = rng() % 10;
    if (live.empty() || action < 6) {
      int64_t id = next_id++;
      std::string text(1 + rng() % 200, static_cast<char>('a' + rng() % 26));
      auto rid = heap_->Insert(MakeRow(id, text));
      ASSERT_TRUE(rid.ok());
      live[id] = {*rid, text};
    } else if (action < 8) {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      ASSERT_TRUE(heap_->Delete(it->second.first).ok());
      live.erase(it);
    } else {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      std::string text(1 + rng() % 300, 'u');
      auto rid = heap_->Update(it->second.first, MakeRow(it->first, text));
      ASSERT_TRUE(rid.ok());
      it->second = {*rid, text};
    }
  }
  size_t seen = 0;
  ASSERT_TRUE(heap_
                  ->Scan([&](Rid rid, const Row& row) {
                    auto it = live.find(row[0].AsInt());
                    EXPECT_NE(it, live.end());
                    if (it != live.end()) {
                      EXPECT_EQ(it->second.first, rid);
                      EXPECT_EQ(it->second.second, row[1].AsText());
                    }
                    ++seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, live.size());
}

}  // namespace
}  // namespace imon::storage
