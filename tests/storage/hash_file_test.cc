#include "storage/hash_file.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "storage/key_codec.h"

namespace imon::storage {
namespace {

std::string Key(int64_t id) { return EncodeKey({Value::Int(id)}); }
Row MakeRow(int64_t id, const std::string& text) {
  return {Value::Int(id), Value::Text(text)};
}

class HashFileTest : public ::testing::Test {
 protected:
  HashFileTest() : disk_(), pool_(&disk_, 128) {
    file_ = disk_.CreateFile();
    hash_ = std::make_unique<HashFile>(&pool_, file_, /*buckets=*/8);
    EXPECT_TRUE(hash_->Initialize().ok());
  }
  DiskManager disk_;
  BufferPool pool_;
  FileId file_;
  std::unique_ptr<HashFile> hash_;
};

TEST_F(HashFileTest, InitializeAllocatesBucketPages) {
  EXPECT_EQ(disk_.NumPages(file_), 8u);
  auto stats = hash_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->main_pages, 8u);
  EXPECT_EQ(stats->overflow_pages, 0u);
}

TEST_F(HashFileTest, InsertGetRoundTrip) {
  auto rid = hash_->Insert(Key(7), MakeRow(7, "seven"));
  ASSERT_TRUE(rid.ok());
  auto row = hash_->Get(*rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsText(), "seven");
}

TEST_F(HashFileTest, LookupBucketFindsKey) {
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(hash_->Insert(Key(i), MakeRow(i, "r")).ok());
  }
  // The bucket holds the key (plus possible collisions).
  bool found = false;
  int64_t visited = 0;
  ASSERT_TRUE(hash_
                  ->LookupBucket(Key(42),
                                 [&](Rid, const Row& row) {
                                   ++visited;
                                   if (row[0].AsInt() == 42) found = true;
                                   return true;
                                 })
                  .ok());
  EXPECT_TRUE(found);
  // A bucket lookup visits only ~1/8 of the rows.
  EXPECT_LT(visited, 40);
}

TEST_F(HashFileTest, OverflowPagesGrowBeyondBuckets) {
  for (int64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(hash_->Insert(Key(i), MakeRow(i, std::string(60, 'x'))).ok());
  }
  auto stats = hash_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->main_pages, 8u);
  EXPECT_GT(stats->overflow_pages, 8u);
  EXPECT_EQ(stats->live_rows, 3000);
}

TEST_F(HashFileTest, ScanVisitsEverything) {
  std::map<int64_t, std::string> expected;
  for (int64_t i = 0; i < 300; ++i) {
    std::string text = "v" + std::to_string(i);
    ASSERT_TRUE(hash_->Insert(Key(i), MakeRow(i, text)).ok());
    expected[i] = text;
  }
  std::map<int64_t, std::string> seen;
  ASSERT_TRUE(hash_
                  ->Scan([&](Rid, const Row& row) {
                    seen[row[0].AsInt()] = row[1].AsText();
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, expected);
}

TEST_F(HashFileTest, DeleteAndUpdate) {
  auto rid = hash_->Insert(Key(1), MakeRow(1, "before"));
  ASSERT_TRUE(rid.ok());
  auto updated = hash_->Update(*rid, MakeRow(1, "afters"));
  ASSERT_TRUE(updated.ok());
  auto row = hash_->Get(*updated);
  EXPECT_EQ((*row)[1].AsText(), "afters");
  ASSERT_TRUE(hash_->Delete(*updated).ok());
  EXPECT_TRUE(hash_->Get(*updated).status().IsNotFound());
  EXPECT_TRUE(hash_->Delete(*updated).IsNotFound());
}

TEST_F(HashFileTest, RandomizedMirrorsStdMap) {
  std::mt19937 rng(31);
  std::map<int64_t, std::pair<Rid, std::string>> live;
  int64_t next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng() % 3 != 0) {
      int64_t id = next_id++;
      std::string text(1 + rng() % 100, static_cast<char>('a' + rng() % 26));
      auto rid = hash_->Insert(Key(id), MakeRow(id, text));
      ASSERT_TRUE(rid.ok());
      live[id] = {*rid, text};
    } else {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      ASSERT_TRUE(hash_->Delete(it->second.first).ok());
      live.erase(it);
    }
  }
  int64_t seen = 0;
  ASSERT_TRUE(hash_
                  ->Scan([&](Rid rid, const Row& row) {
                    auto it = live.find(row[0].AsInt());
                    EXPECT_NE(it, live.end());
                    if (it != live.end()) {
                      EXPECT_EQ(it->second.first, rid);
                      EXPECT_EQ(it->second.second, row[1].AsText());
                    }
                    ++seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, static_cast<int64_t>(live.size()));
}

}  // namespace
}  // namespace imon::storage
