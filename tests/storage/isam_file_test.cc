#include "storage/isam_file.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "storage/key_codec.h"

namespace imon::storage {
namespace {

std::string Key(int64_t id) { return EncodeKey({Value::Int(id)}); }
Row MakeRow(int64_t id, const std::string& text) {
  return {Value::Int(id), Value::Text(text)};
}

std::vector<std::pair<std::string, Row>> KeyedRows(int64_t n,
                                                   int pad = 40) {
  std::vector<std::pair<std::string, Row>> out;
  for (int64_t i = 0; i < n; ++i) {
    out.emplace_back(Key(i), MakeRow(i, std::string(pad, 'r')));
  }
  // Shuffle: Build() must sort internally.
  std::shuffle(out.begin(), out.end(), std::mt19937(5));
  return out;
}

class IsamFileTest : public ::testing::Test {
 protected:
  IsamFileTest() : disk_(), pool_(&disk_, 256) {
    file_ = disk_.CreateFile();
    isam_ = std::make_unique<IsamFile>(&pool_, file_);
  }
  DiskManager disk_;
  BufferPool pool_;
  FileId file_;
  std::unique_ptr<IsamFile> isam_;
};

TEST_F(IsamFileTest, EmptyBuildScansNothing) {
  ASSERT_TRUE(isam_->Build({}).ok());
  int64_t n = 0;
  ASSERT_TRUE(isam_
                  ->Scan([&](Rid, const Row&) {
                    ++n;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(n, 0);
  auto stats = isam_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->overflow_pages, 0u);
}

TEST_F(IsamFileTest, BuildLaysOutAllRowsWithoutOverflow) {
  ASSERT_TRUE(isam_->Build(KeyedRows(2000)).ok());
  auto stats = isam_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->live_rows, 2000);
  EXPECT_EQ(stats->overflow_pages, 0u);  // fresh build: main pages only
  EXPECT_GT(stats->main_pages, 10u);
}

TEST_F(IsamFileTest, RangeScanRoutesThroughDirectory) {
  ASSERT_TRUE(isam_->Build(KeyedRows(5000)).ok());
  // Count rows in [1000, 1099]: the scan may visit extra chain rows,
  // which the caller-level filter (here: explicit check) removes.
  int64_t in_range = 0;
  int64_t visited = 0;
  ASSERT_TRUE(isam_
                  ->ScanRange(Key(1000), Key(1099),
                              [&](Rid, const Row& row) {
                                ++visited;
                                int64_t id = row[0].AsInt();
                                if (id >= 1000 && id <= 1099) ++in_range;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(in_range, 100);
  // Routing is effective: far fewer rows visited than a full scan.
  EXPECT_LT(visited, 1500);
}

TEST_F(IsamFileTest, PostBuildInsertsBecomeOverflow) {
  ASSERT_TRUE(isam_->Build(KeyedRows(1500)).ok());
  // Skewed inserts: everything routes to the same region.
  for (int64_t i = 0; i < 800; ++i) {
    ASSERT_TRUE(
        isam_->Insert(Key(700), MakeRow(700000 + i, std::string(50, 'o')))
            .ok());
  }
  auto stats = isam_->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->overflow_pages, 3u);
  EXPECT_EQ(stats->live_rows, 2300);
  // The hot region's chain now holds the extra rows; range scans there
  // still find the originals.
  int64_t found = 0;
  ASSERT_TRUE(isam_
                  ->ScanRange(Key(700), Key(700),
                              [&](Rid, const Row& row) {
                                if (row[0].AsInt() == 700) ++found;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(found, 1);
}

TEST_F(IsamFileTest, GetDeleteUpdate) {
  ASSERT_TRUE(isam_->Build(KeyedRows(100)).ok());
  auto rid = isam_->Insert(Key(200), MakeRow(200, "fresh1"));
  ASSERT_TRUE(rid.ok());
  auto row = isam_->Get(*rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsText(), "fresh1");
  ASSERT_TRUE(isam_->Update(*rid, MakeRow(200, "fresh2")).ok());
  row = isam_->Get(*rid);
  EXPECT_EQ((*row)[1].AsText(), "fresh2");
  ASSERT_TRUE(isam_->Delete(*rid).ok());
  EXPECT_TRUE(isam_->Get(*rid).status().IsNotFound());
}

TEST_F(IsamFileTest, DirectorySurvivesCacheEviction) {
  ASSERT_TRUE(isam_->Build(KeyedRows(3000)).ok());
  // A second IsamFile instance over the same file must reload the
  // directory from disk and agree.
  IsamFile reopened(&pool_, file_);
  int64_t n = 0;
  ASSERT_TRUE(reopened
                  .Scan([&](Rid, const Row&) {
                    ++n;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(n, 3000);
}

TEST_F(IsamFileTest, UnboundedScansSeeEverything) {
  ASSERT_TRUE(isam_->Build(KeyedRows(777)).ok());
  for (int64_t i = 0; i < 23; ++i) {
    ASSERT_TRUE(isam_->Insert(Key(10000 + i), MakeRow(10000 + i, "x")).ok());
  }
  std::map<int64_t, int> seen;
  ASSERT_TRUE(isam_
                  ->Scan([&](Rid, const Row& row) {
                    ++seen[row[0].AsInt()];
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen.size(), 800u);
  for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << id;
}

}  // namespace
}  // namespace imon::storage
