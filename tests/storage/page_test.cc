#include "storage/page.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

namespace imon::storage {
namespace {

class PageTest : public ::testing::Test {
 protected:
  PageTest() : view_(bytes_) { view_.Init(PageType::kHeap); }
  char bytes_[kPageSize] = {};
  PageView view_;
};

TEST_F(PageTest, InitResetsHeader) {
  EXPECT_EQ(view_.type(), PageType::kHeap);
  EXPECT_EQ(view_.slot_count(), 0);
  EXPECT_EQ(view_.next_page(), kInvalidPageNo);
  EXPECT_EQ(view_.LiveCount(), 0);
}

TEST_F(PageTest, InsertAndGet) {
  auto slot = view_.Insert("hello");
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(view_.Get(*slot), "hello");
  EXPECT_EQ(view_.LiveCount(), 1);
}

TEST_F(PageTest, GetOutOfRangeIsEmpty) {
  EXPECT_TRUE(view_.Get(0).empty());
  EXPECT_TRUE(view_.Get(99).empty());
}

TEST_F(PageTest, TombstoneHidesRecord) {
  auto slot = view_.Insert("doomed");
  ASSERT_TRUE(slot.has_value());
  view_.Tombstone(*slot);
  EXPECT_TRUE(view_.Get(*slot).empty());
  EXPECT_EQ(view_.LiveCount(), 0);
  EXPECT_EQ(view_.slot_count(), 1);  // slot array keeps the entry
}

TEST_F(PageTest, TombstonedSlotIsReused) {
  auto a = view_.Insert("first");
  view_.Tombstone(*a);
  auto b = view_.Insert("second");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, *a);
  EXPECT_EQ(view_.Get(*b), "second");
}

TEST_F(PageTest, FillsUntilFullThenRejects) {
  std::string record(100, 'r');
  int inserted = 0;
  while (view_.Insert(record).has_value()) ++inserted;
  // 100B + 4B slot each, ~8176 usable: expect close to 78 records.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 82);
  EXPECT_FALSE(view_.Insert(record).has_value());
  // A smaller record may still fit.
  EXPECT_TRUE(view_.Insert("x").has_value());
}

TEST_F(PageTest, CompactionReclaimsTombstonedSpace) {
  std::string record(1000, 'a');
  std::vector<uint16_t> slots;
  while (true) {
    auto s = view_.Insert(record);
    if (!s.has_value()) break;
    slots.push_back(*s);
  }
  ASSERT_GE(slots.size(), 4u);
  view_.Tombstone(slots[0]);
  view_.Tombstone(slots[2]);
  // Two records' worth of space is free again (via compaction on demand).
  EXPECT_TRUE(view_.Insert(record).has_value());
  EXPECT_TRUE(view_.Insert(record).has_value());
  EXPECT_FALSE(view_.Insert(record).has_value());
  // Survivors are intact after compactions.
  EXPECT_EQ(view_.Get(slots[1]), record);
}

TEST_F(PageTest, InsertAtKeepsOrder) {
  ASSERT_TRUE(view_.InsertAt(0, "b"));
  ASSERT_TRUE(view_.InsertAt(0, "a"));
  ASSERT_TRUE(view_.InsertAt(2, "d"));
  ASSERT_TRUE(view_.InsertAt(2, "c"));
  ASSERT_EQ(view_.slot_count(), 4);
  EXPECT_EQ(view_.Get(0), "a");
  EXPECT_EQ(view_.Get(1), "b");
  EXPECT_EQ(view_.Get(2), "c");
  EXPECT_EQ(view_.Get(3), "d");
}

TEST_F(PageTest, EraseShiftsSlots) {
  view_.InsertAt(0, "a");
  view_.InsertAt(1, "b");
  view_.InsertAt(2, "c");
  view_.Erase(1);
  ASSERT_EQ(view_.slot_count(), 2);
  EXPECT_EQ(view_.Get(0), "a");
  EXPECT_EQ(view_.Get(1), "c");
}

TEST_F(PageTest, UpdateInPlaceAndGrow) {
  auto slot = view_.Insert(std::string(50, 'o'));
  ASSERT_TRUE(slot.has_value());
  EXPECT_TRUE(view_.Update(*slot, "short"));
  EXPECT_EQ(view_.Get(*slot), "short");
  std::string big(200, 'B');
  EXPECT_TRUE(view_.Update(*slot, big));
  EXPECT_EQ(view_.Get(*slot), big);
}

TEST_F(PageTest, UpdateFailsWhenNoRoom) {
  std::string record(2500, 'x');
  auto a = view_.Insert(record);
  view_.Insert(record);
  view_.Insert(record);
  ASSERT_TRUE(a.has_value());
  // Growing one record to 4000 bytes exceeds the remaining space.
  EXPECT_FALSE(view_.Update(*a, std::string(4000, 'y')));
  EXPECT_EQ(view_.Get(*a), record);  // unchanged on failure
}

TEST_F(PageTest, ChainPointerRoundTrip) {
  view_.set_next_page(12345);
  EXPECT_EQ(view_.next_page(), 12345u);
  view_.set_extra(1);
  EXPECT_EQ(view_.extra(), 1u);
}

TEST(PageRandomized, InsertDeleteMirrorsStdMap) {
  char bytes[kPageSize];
  PageView view(bytes);
  view.Init(PageType::kHeap);
  std::mt19937 rng(7);
  std::vector<std::pair<uint16_t, std::string>> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng() % 3 != 0) {
      std::string rec(1 + rng() % 120, static_cast<char>('a' + rng() % 26));
      auto slot = view.Insert(rec);
      if (slot.has_value()) live.emplace_back(*slot, rec);
    } else {
      size_t pick = rng() % live.size();
      view.Tombstone(live[pick].first);
      live.erase(live.begin() + pick);
    }
    if (step % 500 == 0) {
      for (const auto& [slot, rec] : live) {
        ASSERT_EQ(view.Get(slot), rec) << "step " << step;
      }
      ASSERT_EQ(view.LiveCount(), live.size());
    }
  }
}

}  // namespace
}  // namespace imon::storage
