#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace imon::storage {
namespace {

// Regression for the PageIdHash packing bug: the old hash shifted a
// size_t by 32, which is undefined (and in practice a no-op) when size_t
// is 32 bits wide, degenerating to file_id ^ page_no — every (a, b)
// collided with (b, a). The fixed hash mixes the packed 64-bit value, so
// even its truncated low 32 bits must keep swapped pairs apart.
TEST(PageIdHashTest, SwappedPairsDoNotCollideInLow32Bits) {
  PageIdHash hash;
  int collisions = 0;
  for (uint32_t a = 1; a <= 64; ++a) {
    for (uint32_t b = 1; b <= 64; ++b) {
      if (a == b) continue;
      uint32_t h1 = static_cast<uint32_t>(hash(PageId{a, b}));
      uint32_t h2 = static_cast<uint32_t>(hash(PageId{b, a}));
      if (h1 == h2) ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0)
      << "hash ignores which half is file_id (the pre-fix behavior)";
}

TEST(PageIdHashTest, Low32BitsAreWellDistributedOverAGrid) {
  // 64x64 grid of (file_id, page_no): 4096 ids. A sound 32-bit
  // truncation yields essentially no collisions (birthday bound ~2 for
  // 4096 draws from 2^32); the broken hash collapsed the grid onto the
  // 127 distinct xor values.
  PageIdHash hash;
  std::unordered_set<uint32_t> low32;
  for (uint32_t f = 0; f < 64; ++f) {
    for (uint32_t p = 0; p < 64; ++p) {
      low32.insert(static_cast<uint32_t>(hash(PageId{f, p})));
    }
  }
  EXPECT_GE(low32.size(), 4090u);
}

TEST(PageIdHashTest, FullWidthIsCollisionFreeOnTheGrid) {
  PageIdHash hash;
  std::set<size_t> seen;
  for (uint32_t f = 0; f < 64; ++f) {
    for (uint32_t p = 0; p < 64; ++p) {
      seen.insert(hash(PageId{f, p}));
    }
  }
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(DiskManagerFaultHookTest, HookInterceptsAndClears) {
  class FailEverything : public DiskFaultHook {
   public:
    Status BeforeRead(const PageId&) override {
      return Status::Corruption("read blocked");
    }
    Status BeforeWrite(const PageId&) override {
      return Status::Corruption("write blocked");
    }
  };

  DiskManager disk;
  FileId file = disk.CreateFile();
  auto page = disk.AllocatePage(file);
  ASSERT_TRUE(page.ok());
  PageId pid{file, *page};
  char buf[kPageSize] = {};

  ASSERT_TRUE(disk.WritePage(pid, buf).ok());
  auto before = disk.stats();

  FailEverything hook;
  disk.set_fault_hook(&hook);
  EXPECT_FALSE(disk.ReadPage(pid, buf).ok());
  EXPECT_FALSE(disk.WritePage(pid, buf).ok());
  // Faulted accesses are not counted as physical I/O.
  EXPECT_EQ(disk.stats().physical_reads, before.physical_reads);
  EXPECT_EQ(disk.stats().physical_writes, before.physical_writes);

  disk.set_fault_hook(nullptr);
  EXPECT_TRUE(disk.ReadPage(pid, buf).ok());
  EXPECT_TRUE(disk.WritePage(pid, buf).ok());
}

}  // namespace
}  // namespace imon::storage
