#include "engine/database.h"

#include <gtest/gtest.h>

#include <thread>

namespace imon::engine {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : db_(DatabaseOptions{}) {}

  QueryResult MustExec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? r.TakeValue() : QueryResult{};
  }

  void MakeProtein() {
    MustExec(
        "CREATE TABLE protein (nref_id INT PRIMARY KEY, sequence TEXT, "
        "seq_length INT, mol_weight DOUBLE)");
  }

  Database db_;
};

TEST_F(DatabaseTest, CreateInsertSelect) {
  MakeProtein();
  MustExec(
      "INSERT INTO protein VALUES (1, 'MKV', 3, 389.5), (2, 'AACD', 4, "
      "420.1)");
  QueryResult r = MustExec("SELECT nref_id, sequence FROM protein "
                           "WHERE nref_id = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[0][1].AsText(), "AACD");
}

TEST_F(DatabaseTest, SelectStar) {
  MakeProtein();
  MustExec("INSERT INTO protein VALUES (1, 'MKV', 3, 1.0)");
  QueryResult r = MustExec("SELECT * FROM protein");
  ASSERT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.columns[0], "nref_id");
  ASSERT_EQ(r.rows.size(), 1u);
}

TEST_F(DatabaseTest, PrimaryKeyEnforcedViaPkeyIndex) {
  MakeProtein();
  MustExec("INSERT INTO protein VALUES (1, 'A', 1, 1.0)");
  auto dup = db_.Execute("INSERT INTO protein VALUES (1, 'B', 1, 1.0)");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  // Failed statement rolled back: still exactly one row.
  QueryResult r = MustExec("SELECT count(*) FROM protein");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(DatabaseTest, PointQueryUsesPkeyIndex) {
  MakeProtein();
  for (int i = 0; i < 5000; ++i) {
    MustExec("INSERT INTO protein VALUES (" + std::to_string(i) +
             ", 'S', 1, 1.0)");
  }
  QueryResult r =
      MustExec("EXPLAIN SELECT nref_id FROM protein WHERE nref_id = 123");
  EXPECT_NE(r.stats.plan_text.find("protein_pkey"), std::string::npos)
      << r.stats.plan_text;
}

TEST_F(DatabaseTest, JoinsTwoTables) {
  MakeProtein();
  MustExec("CREATE TABLE organism (nref_id INT, ordinal INT, name TEXT)");
  MustExec("INSERT INTO protein VALUES (1, 'A', 1, 1.0), (2, 'B', 1, 1.0)");
  MustExec("INSERT INTO organism VALUES (1, 0, 'e.coli'), "
           "(1, 1, 'h.sapiens'), (2, 0, 'yeast')");
  QueryResult r = MustExec(
      "SELECT p.nref_id, o.name FROM protein p JOIN organism o ON "
      "p.nref_id = o.nref_id WHERE p.nref_id = 1 ORDER BY o.ordinal");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsText(), "e.coli");
  EXPECT_EQ(r.rows[1][1].AsText(), "h.sapiens");
}

TEST_F(DatabaseTest, ThreeWayJoinWithAggregates) {
  MustExec("CREATE TABLE a (id INT, v INT)");
  MustExec("CREATE TABLE b (id INT, a_id INT)");
  MustExec("CREATE TABLE c (id INT, b_id INT, w DOUBLE)");
  for (int i = 0; i < 20; ++i) {
    MustExec("INSERT INTO a VALUES (" + std::to_string(i) + ", " +
             std::to_string(i * 10) + ")");
    MustExec("INSERT INTO b VALUES (" + std::to_string(i) + ", " +
             std::to_string(i % 5) + ")");
    MustExec("INSERT INTO c VALUES (" + std::to_string(i) + ", " +
             std::to_string(i % 7) + ", 1.5)");
  }
  QueryResult r = MustExec(
      "SELECT a.id, count(*), sum(c.w) FROM a JOIN b ON a.id = b.a_id "
      "JOIN c ON b.id = c.b_id GROUP BY a.id ORDER BY a.id");
  ASSERT_GT(r.rows.size(), 0u);
  // Every b row has a_id in [0,5), each joining c rows with b_id=b.id%7.
  EXPECT_LE(r.rows.size(), 5u);
}

TEST_F(DatabaseTest, UpdateAndDelete) {
  MakeProtein();
  MustExec("INSERT INTO protein VALUES (1, 'A', 1, 1.0), (2, 'B', 2, 2.0), "
           "(3, 'C', 3, 3.0)");
  QueryResult u =
      MustExec("UPDATE protein SET seq_length = 99 WHERE nref_id > 1");
  EXPECT_EQ(u.affected_rows, 2);
  QueryResult r =
      MustExec("SELECT count(*) FROM protein WHERE seq_length = 99");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  QueryResult d = MustExec("DELETE FROM protein WHERE nref_id = 2");
  EXPECT_EQ(d.affected_rows, 1);
  r = MustExec("SELECT count(*) FROM protein");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(DatabaseTest, GroupByHavingLimit) {
  MustExec("CREATE TABLE t (k INT, v INT)");
  for (int i = 0; i < 30; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i % 3) + ", " +
             std::to_string(i) + ")");
  }
  QueryResult r = MustExec(
      "SELECT k, count(*) AS n, avg(v) FROM t GROUP BY k "
      "HAVING count(*) >= 10 ORDER BY k DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[0][1].AsInt(), 10);
}

TEST_F(DatabaseTest, DistinctAndBetweenAndLike) {
  MustExec("CREATE TABLE t (v INT, s TEXT)");
  MustExec("INSERT INTO t VALUES (1, 'apple'), (1, 'apple'), (2, 'banana'), "
           "(3, 'apricot')");
  QueryResult r = MustExec("SELECT DISTINCT v FROM t ORDER BY v");
  EXPECT_EQ(r.rows.size(), 3u);
  r = MustExec("SELECT count(*) FROM t WHERE v BETWEEN 2 AND 3");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  r = MustExec("SELECT count(*) FROM t WHERE s LIKE 'ap%'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(DatabaseTest, NullSemantics) {
  MustExec("CREATE TABLE t (v INT, s TEXT)");
  MustExec("INSERT INTO t (v) VALUES (1)");
  MustExec("INSERT INTO t VALUES (2, 'x')");
  QueryResult r = MustExec("SELECT count(*) FROM t WHERE s IS NULL");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  // NULL never equals anything.
  r = MustExec("SELECT count(*) FROM t WHERE s = 'x' OR s <> 'x'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  // count(s) skips NULLs.
  r = MustExec("SELECT count(s) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(DatabaseTest, NotNullConstraint) {
  MustExec("CREATE TABLE t (a INT NOT NULL, b INT)");
  EXPECT_FALSE(db_.Execute("INSERT INTO t (b) VALUES (1)").ok());
  MustExec("INSERT INTO t VALUES (1, NULL)");
}

TEST_F(DatabaseTest, ModifyToBtreeRemovesOverflow) {
  MustExec("CREATE TABLE big (id INT PRIMARY KEY, payload TEXT) "
           "WITH MAIN_PAGES = 2");
  for (int i = 0; i < 2000; ++i) {
    MustExec("INSERT INTO big VALUES (" + std::to_string(i) + ", '" +
             std::string(50, 'x') + "')");
  }
  MustExec("ANALYZE big");
  auto before = db_.catalog()->GetTable("big");
  ASSERT_TRUE(before.ok());
  EXPECT_GT(before->overflow_pages, 0);
  MustExec("MODIFY big TO BTREE");
  auto after = db_.catalog()->GetTable("big");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->structure, catalog::StorageStructure::kBtree);
  EXPECT_EQ(after->overflow_pages, 0);
  EXPECT_EQ(after->row_count, 2000);
  // Data survives restructure + secondary indexes still work.
  QueryResult r = MustExec("SELECT count(*) FROM big WHERE id < 100");
  EXPECT_EQ(r.rows[0][0].AsInt(), 100);
}

TEST_F(DatabaseTest, ModifyToHashEnablesPointLookups) {
  MustExec("CREATE TABLE kv (id INT PRIMARY KEY, payload TEXT) "
           "WITH MAIN_PAGES = 16");
  for (int i = 0; i < 3000; ++i) {
    MustExec("INSERT INTO kv VALUES (" + std::to_string(i) + ", 'p" +
             std::to_string(i) + "')");
  }
  MustExec("MODIFY kv TO HASH");
  auto info = db_.catalog()->GetTable("kv");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->structure, catalog::StorageStructure::kHash);
  MustExec("ANALYZE kv");

  // Point query plans a hash bucket probe.
  QueryResult plan = MustExec("EXPLAIN SELECT payload FROM kv WHERE id = 77");
  EXPECT_NE(plan.stats.plan_text.find("HashLookup"), std::string::npos)
      << plan.stats.plan_text;
  QueryResult r = MustExec("SELECT payload FROM kv WHERE id = 77");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "p77");

  // Range queries cannot use the hash structure.
  plan = MustExec("EXPLAIN SELECT payload FROM kv WHERE id < 10");
  EXPECT_EQ(plan.stats.plan_text.find("HashLookup"), std::string::npos);
  r = MustExec("SELECT count(*) FROM kv WHERE id < 10");
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);

  // DML still works on the hash structure.
  MustExec("UPDATE kv SET payload = 'updated' WHERE id = 5");
  r = MustExec("SELECT payload FROM kv WHERE id = 5");
  EXPECT_EQ(r.rows[0][0].AsText(), "updated");
  MustExec("DELETE FROM kv WHERE id = 5");
  r = MustExec("SELECT count(*) FROM kv");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2999);
  // Duplicate PKs rejected by the hash structure itself.
  auto dup = db_.Execute("INSERT INTO kv VALUES (77, 'dup')");
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(DatabaseTest, ModifyToIsamRoutesRangeQueries) {
  MustExec("CREATE TABLE ts (id INT PRIMARY KEY, v TEXT)");
  for (int i = 0; i < 3000; ++i) {
    MustExec("INSERT INTO ts VALUES (" + std::to_string(i) + ", 'v" +
             std::to_string(i) + "')");
  }
  MustExec("MODIFY ts TO ISAM");
  auto info = db_.catalog()->GetTable("ts");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->structure, catalog::StorageStructure::kIsam);
  EXPECT_EQ(info->row_count, 3000);
  EXPECT_EQ(info->overflow_pages, 0);  // fresh build
  MustExec("ANALYZE ts");

  QueryResult plan =
      MustExec("EXPLAIN SELECT v FROM ts WHERE id BETWEEN 100 AND 120");
  EXPECT_NE(plan.stats.plan_text.find("IsamScan"), std::string::npos)
      << plan.stats.plan_text;
  QueryResult r = MustExec("SELECT count(*) FROM ts WHERE id BETWEEN 100 "
                           "AND 120");
  EXPECT_EQ(r.rows[0][0].AsInt(), 21);
  r = MustExec("SELECT v FROM ts WHERE id = 77");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "v77");

  // Post-build inserts land in overflow chains; R3's signal accrues.
  for (int i = 3000; i < 6000; ++i) {
    MustExec("INSERT INTO ts VALUES (" + std::to_string(i) + ", 'o')");
  }
  MustExec("ANALYZE ts");
  info = db_.catalog()->GetTable("ts");
  EXPECT_GT(info->overflow_pages, 0);
  r = MustExec("SELECT count(*) FROM ts");
  EXPECT_EQ(r.rows[0][0].AsInt(), 6000);
}

TEST_F(DatabaseTest, AnalyzeImprovesEstimates) {
  MustExec("CREATE TABLE t (v INT)");
  for (int i = 0; i < 1000; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i % 100) + ")");
  }
  QueryResult before = MustExec("SELECT v FROM t WHERE v = 5");
  MustExec("ANALYZE t");
  QueryResult after = MustExec("SELECT v FROM t WHERE v = 5");
  // 10 of 1000 rows match (1%); without statistics the default equality
  // selectivity (10%) predicts ~100 rows. The histogram fixes this — the
  // paper's "collect statistics" tuning signal.
  double truth = 10.0;
  EXPECT_GT(before.stats.estimated_rows, 50.0);
  EXPECT_LT(std::abs(after.stats.estimated_rows - truth),
            std::abs(before.stats.estimated_rows - truth));
  EXPECT_NEAR(after.stats.estimated_rows, truth, 5.0);
}

TEST_F(DatabaseTest, SecondaryIndexUsedAfterCreate) {
  MustExec("CREATE TABLE t (a INT, b INT)");
  // b is highly selective (~2 matches in 3000) so an unclustered index
  // probe beats the sequential scan once the index exists.
  for (int i = 0; i < 3000; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i / 2) + ")");
  }
  MustExec("ANALYZE t");
  QueryResult no_index = MustExec("EXPLAIN SELECT a FROM t WHERE b = 7");
  EXPECT_EQ(no_index.stats.plan_text.find("IndexScan"), std::string::npos);
  MustExec("CREATE INDEX t_b ON t (b)");
  QueryResult with_index = MustExec("EXPLAIN SELECT a FROM t WHERE b = 7");
  EXPECT_NE(with_index.stats.plan_text.find("t_b"), std::string::npos)
      << with_index.stats.plan_text;
  QueryResult r = MustExec("SELECT count(*) FROM t WHERE b = 7");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(DatabaseTest, WhatIfVirtualIndexLowersCost) {
  MustExec("CREATE TABLE t (a INT, b INT)");
  for (int i = 0; i < 3000; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i % 500) + ")");
  }
  MustExec("ANALYZE t");
  auto table = db_.catalog()->GetTable("t");
  ASSERT_TRUE(table.ok());

  auto base = db_.WhatIfPlan("SELECT a FROM t WHERE b = 7", {});
  ASSERT_TRUE(base.ok());

  catalog::IndexInfo virt;
  virt.id = -1;
  virt.name = "virt_t_b";
  virt.table_id = table->id;
  virt.key_columns = {1};
  virt.is_virtual = true;
  auto with = db_.WhatIfPlan("SELECT a FROM t WHERE b = 7", {virt});
  ASSERT_TRUE(with.ok());
  EXPECT_LT(with->summary.TotalCost(), base->summary.TotalCost());
  ASSERT_EQ(with->virtual_indexes_used.size(), 1u);
  EXPECT_EQ(with->virtual_indexes_used[0], -1);
  // What-if planning must not create anything real.
  EXPECT_FALSE(db_.catalog()->GetIndex("virt_t_b").ok());
}

TEST_F(DatabaseTest, TransactionsCommitAndRollback) {
  MakeProtein();
  auto session = db_.CreateSession();
  ASSERT_TRUE(db_.Execute("BEGIN", session.get()).ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO protein VALUES (1, 'A', 1, 1.0)",
                          session.get())
                  .ok());
  ASSERT_TRUE(db_.Execute("ROLLBACK", session.get()).ok());
  QueryResult r = MustExec("SELECT count(*) FROM protein");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);

  ASSERT_TRUE(db_.Execute("BEGIN", session.get()).ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO protein VALUES (2, 'B', 1, 1.0)",
                          session.get())
                  .ok());
  ASSERT_TRUE(db_.Execute("COMMIT", session.get()).ok());
  r = MustExec("SELECT count(*) FROM protein");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(DatabaseTest, DeadlockDetected) {
  MustExec("CREATE TABLE x (v INT)");
  MustExec("CREATE TABLE y (v INT)");
  MustExec("INSERT INTO x VALUES (1)");
  MustExec("INSERT INTO y VALUES (1)");

  auto s1 = db_.CreateSession();
  auto s2 = db_.CreateSession();
  ASSERT_TRUE(db_.Execute("BEGIN", s1.get()).ok());
  ASSERT_TRUE(db_.Execute("BEGIN", s2.get()).ok());
  ASSERT_TRUE(db_.Execute("UPDATE x SET v = 2", s1.get()).ok());
  ASSERT_TRUE(db_.Execute("UPDATE y SET v = 2", s2.get()).ok());

  // s1 waits on y (held by s2); s2 then requests x -> deadlock.
  std::atomic<bool> s1_done{false};
  Status s1_status;
  std::thread t1([&] {
    auto r = db_.Execute("UPDATE y SET v = 3", s1.get());
    s1_status = r.status();
    s1_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto r2 = db_.Execute("UPDATE x SET v = 3", s2.get());
  t1.join();
  // One of the two must have been aborted as the deadlock victim.
  bool s1_aborted = s1_status.IsAborted();
  bool s2_aborted = !r2.ok() && r2.status().IsAborted();
  EXPECT_TRUE(s1_aborted || s2_aborted);
  EXPECT_GE(db_.lock_manager()->stats().total_deadlocks, 1);
  // Clean up: end both txns.
  db_.Execute("COMMIT", s1.get()).ok();
  db_.Execute("COMMIT", s2.get()).ok();
}

TEST_F(DatabaseTest, TriggersRaiseAlerts) {
  MustExec("CREATE TABLE metrics (sessions INT)");
  MustExec("CREATE TRIGGER too_many AFTER INSERT ON metrics "
           "WHEN sessions >= 100 RAISE 'session limit reached'");
  std::vector<AlertEvent> alerts;
  db_.SetAlertHandler([&](const AlertEvent& e) { alerts.push_back(e); });
  MustExec("INSERT INTO metrics VALUES (50)");
  EXPECT_TRUE(alerts.empty());
  MustExec("INSERT INTO metrics VALUES (120)");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].trigger_name, "too_many");
  EXPECT_EQ(alerts[0].message, "session limit reached");
  EXPECT_EQ(alerts[0].row[0].AsInt(), 120);
}

TEST_F(DatabaseTest, MonitorRecordsStatementPath) {
  MakeProtein();
  MustExec("INSERT INTO protein VALUES (1, 'A', 1, 1.0)");
  MustExec("SELECT nref_id FROM protein WHERE nref_id = 1");
  MustExec("SELECT nref_id FROM protein WHERE nref_id = 1");

  auto statements = db_.monitor()->SnapshotStatements();
  bool found = false;
  for (const auto& s : statements) {
    if (s.text == "SELECT nref_id FROM protein WHERE nref_id = 1") {
      found = true;
      EXPECT_EQ(s.frequency, 2);
    }
  }
  EXPECT_TRUE(found);

  auto workload = db_.monitor()->SnapshotWorkload();
  ASSERT_GE(workload.size(), 3u);
  const auto& last = workload.back();
  EXPECT_GT(last.wallclock_nanos, 0);
  EXPECT_GT(last.monitor_nanos, 0);
  EXPECT_GE(last.estimated_cpu + last.estimated_io, 0);

  auto refs = db_.monitor()->SnapshotReferences();
  EXPECT_FALSE(refs.empty());
  auto table_freq = db_.monitor()->TableFrequencies();
  auto protein = db_.catalog()->GetTable("protein");
  ASSERT_TRUE(protein.ok());
  EXPECT_GE(table_freq[protein->id], 3);
}

TEST_F(DatabaseTest, MonitorDisabledAddsNothing) {
  DatabaseOptions options;
  options.monitor.enabled = false;
  Database off(options);
  ASSERT_TRUE(off.Execute("CREATE TABLE t (v INT)").ok());
  ASSERT_TRUE(off.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(off.Execute("SELECT * FROM t").ok());
  EXPECT_TRUE(off.monitor()->SnapshotStatements().empty());
  EXPECT_TRUE(off.monitor()->SnapshotWorkload().empty());
  EXPECT_EQ(off.monitor()->counters().total_monitor_nanos, 0);
}

TEST_F(DatabaseTest, PlanCacheHitsAndInvalidation) {
  DatabaseOptions options;
  options.plan_cache_capacity = 64;
  Database db(options);
  auto exec = [&](const std::string& sql) {
    auto r = db.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  };
  exec("CREATE TABLE t (v INT)");
  exec("INSERT INTO t VALUES (1)");
  exec("INSERT INTO t VALUES (2)");

  const std::string q = "SELECT count(*) FROM t WHERE v > 0";
  exec(q);  // miss: fills the cache
  exec(q);  // hit
  exec(q);  // hit
  auto stats = db.plan_cache_stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_GE(stats.misses, 1);
  EXPECT_GE(stats.entries, 1);

  // Cached plans return fresh data (inserts don't invalidate)...
  exec("INSERT INTO t VALUES (3)");
  auto r = db.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 3);

  // ...but DDL invalidates: the plan must pick up the new index.
  exec("CREATE INDEX t_v ON t (v)");
  for (int i = 0; i < 3000; ++i) {
    exec("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  exec("ANALYZE t");
  auto after = db.Execute("SELECT count(*) FROM t WHERE v = 77");
  ASSERT_TRUE(after.ok());
  auto again = db.Execute("SELECT count(*) FROM t WHERE v = 77");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->stats.used_indexes.empty());
  // Re-running the earlier cached statement drops its stale entry.
  exec(q);
  EXPECT_GT(db.plan_cache_stats().invalidations, 0);
}

TEST_F(DatabaseTest, PlanCacheMonitoredLikeNormalStatements) {
  DatabaseOptions options;
  options.plan_cache_capacity = 16;
  Database db(options);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (v INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.Execute("SELECT v FROM t").ok());
  }
  // Frequency counts cached executions too.
  bool found = false;
  for (const auto& s : db.monitor()->SnapshotStatements()) {
    if (s.text == "SELECT v FROM t") {
      found = true;
      EXPECT_EQ(s.frequency, 4);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DatabaseTest, ParseErrorsDoNotCrash) {
  EXPECT_FALSE(db_.Execute("SELEKT * FROM nowhere").ok());
  EXPECT_FALSE(db_.Execute("SELECT FROM").ok());
  EXPECT_FALSE(db_.Execute("").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM missing_table").ok());
  MakeProtein();
  EXPECT_FALSE(db_.Execute("SELECT missing_col FROM protein").ok());
}

TEST_F(DatabaseTest, InQueryAndArithmetic) {
  MustExec("CREATE TABLE t (v INT)");
  for (int i = 1; i <= 10; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  QueryResult r = MustExec("SELECT count(*) FROM t WHERE v IN (2, 4, 6)");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  r = MustExec("SELECT v * 2 + 1 FROM t WHERE v = 5");
  EXPECT_EQ(r.rows[0][0].AsInt(), 11);
  r = MustExec("SELECT count(*) FROM t WHERE v % 2 = 0");
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
}

}  // namespace
}  // namespace imon::engine
