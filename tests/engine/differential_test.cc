// Differential correctness: the same logical database must return the
// same answers regardless of physical design — storage structure (HEAP /
// BTREE / HASH / ISAM), secondary indexes present or not, statistics
// present or not, plan cache on or off. This is the invariant the
// paper's whole premise rests on: physical tuning may change *cost*,
// never *results*.
//
// The replay/compare machinery lives in src/testing (DifferentialOracle);
// these tests drive it with the classic hand-authored dataset plus a
// fixed query list, and separately prove the oracle itself catches a
// deliberately broken design axis.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "testing/oracle.h"
#include "testing/workload_gen.h"
#include "tests/testing_util.h"

namespace imon::engine {
namespace {

using imon::testing::DifferentialOracle;
using imon::testing::Fingerprint;
using imon::testing::PhysicalDesign;
using imon::testing::Populate;

const char* const kQueries[] = {
    "SELECT count(*) FROM item",
    "SELECT id, price FROM item WHERE id = 123",
    "SELECT id FROM item WHERE id BETWEEN 50 AND 99",
    "SELECT count(*) FROM item WHERE tag IS NULL",
    "SELECT grp, count(*), avg(price) FROM item GROUP BY grp",
    "SELECT i.grp, sum(s.qty) FROM item i JOIN sale s ON i.id = s.item_id "
    "GROUP BY i.grp HAVING sum(s.qty) > 10",
    "SELECT i.id, s.day FROM item i JOIN sale s ON i.id = s.item_id WHERE "
    "i.price < 2000 AND s.day < 5 ORDER BY i.id, s.day LIMIT 40",
    "SELECT DISTINCT tag FROM item WHERE tag LIKE 'tag%' ORDER BY tag",
    "SELECT count(*) FROM item i JOIN sale s ON i.id = s.item_id WHERE "
    "i.grp IN (1, 3, 5) AND s.qty >= 3",
    "SELECT grp, max(price) - min(price) FROM item WHERE price > 100 "
    "GROUP BY grp ORDER BY grp DESC",
};

class DifferentialTest : public ::testing::Test {
 protected:
  std::vector<std::string> Baseline() {
    Database db{DatabaseOptions{}};
    Populate(&db, 99);
    std::vector<std::string> out;
    for (const char* q : kQueries) {
      auto r = db.Execute(q);
      EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
      out.push_back(Fingerprint(*r));
    }
    return out;
  }

  void ExpectSameResults(Database* db,
                         const std::vector<std::string>& baseline,
                         const std::string& label) {
    for (size_t i = 0; i < std::size(kQueries); ++i) {
      auto r = db->Execute(kQueries[i]);
      ASSERT_TRUE(r.ok()) << label << ": " << kQueries[i] << " -> "
                          << r.status();
      EXPECT_EQ(Fingerprint(*r), baseline[i])
          << label << " diverged on: " << kQueries[i];
    }
  }
};

TEST_F(DifferentialTest, StorageStructuresAgree) {
  auto baseline = Baseline();
  for (const char* structure : {"BTREE", "HASH", "ISAM", "HEAP"}) {
    Database db{DatabaseOptions{}};
    Populate(&db, 99);
    ASSERT_TRUE(
        db.Execute("MODIFY item TO " + std::string(structure)).ok());
    ASSERT_TRUE(
        db.Execute("MODIFY sale TO " + std::string(structure)).ok());
    ExpectSameResults(&db, baseline, structure);
  }
}

TEST_F(DifferentialTest, IndexesDoNotChangeResults) {
  auto baseline = Baseline();
  Database db{DatabaseOptions{}};
  Populate(&db, 99);
  ASSERT_TRUE(db.Execute("CREATE INDEX i_grp ON item (grp)").ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX i_price ON item (price)").ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX s_item ON sale (item_id)").ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX s_day_qty ON sale (day, qty)").ok());
  ExpectSameResults(&db, baseline, "with indexes");
}

TEST_F(DifferentialTest, StatisticsDoNotChangeResults) {
  auto baseline = Baseline();
  Database db{DatabaseOptions{}};
  Populate(&db, 99);
  ASSERT_TRUE(db.Execute("ANALYZE item").ok());
  ASSERT_TRUE(db.Execute("ANALYZE sale").ok());
  ExpectSameResults(&db, baseline, "with statistics");
}

TEST_F(DifferentialTest, PlanCacheDoesNotChangeResults) {
  auto baseline = Baseline();
  DatabaseOptions options;
  options.plan_cache_capacity = 64;
  Database db(options);
  Populate(&db, 99);
  // Twice: once filling the cache, once hitting it.
  ExpectSameResults(&db, baseline, "cache cold");
  ExpectSameResults(&db, baseline, "cache hot");
  EXPECT_GT(db.plan_cache_stats().hits, 0);
}

TEST_F(DifferentialTest, FullTuningPipelinePreservesResults) {
  auto baseline = Baseline();
  Database db{DatabaseOptions{}};
  Populate(&db, 99);
  // The "manually optimized" configuration: everything at once.
  ASSERT_TRUE(db.Execute("MODIFY item TO BTREE").ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX s_item ON sale (item_id)").ok());
  ASSERT_TRUE(db.Execute("ANALYZE item").ok());
  ASSERT_TRUE(db.Execute("ANALYZE sale").ok());
  ASSERT_TRUE(db.Execute("MODIFY sale TO HASH").ok());
  ExpectSameResults(&db, baseline, "tuned");
  // DML after tuning still agrees with the same DML on the baseline.
  Database plain{DatabaseOptions{}};
  Populate(&plain, 99);
  for (Database* target : {&db, &plain}) {
    ASSERT_TRUE(
        target->Execute("UPDATE item SET price = 1.5 WHERE grp = 2").ok());
    ASSERT_TRUE(target->Execute("DELETE FROM sale WHERE qty = 1").ok());
  }
  for (const char* q : kQueries) {
    auto a = db.Execute(q);
    auto b = plain.Execute(q);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    EXPECT_EQ(Fingerprint(*a), Fingerprint(*b)) << q;
  }
}

// ---- Oracle-driven differential tests -----------------------------------

TEST_F(DifferentialTest, OracleFindsNoDivergenceOnGeneratedWorkload) {
  imon::testing::GenConfig config;
  config.seed = 99;
  auto workload = imon::testing::GenerateWorkload(config);
  DifferentialOracle oracle;
  auto report = oracle.Run(workload);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->designs_run, 8);
  EXPECT_GT(report->queries_compared, 0);
  for (const auto& d : report->divergences) ADD_FAILURE() << d.Repro();
}

TEST_F(DifferentialTest, OracleCatchesSabotagedAxisAndShrinks) {
  imon::testing::GenConfig config;
  config.seed = 7;
  config.queries = 4;
  auto workload = imon::testing::GenerateWorkload(config);

  DifferentialOracle::Options options;
  options.sabotage_index_axis = true;  // deliberately broken axis
  options.max_shrink_replays = 200;
  DifferentialOracle oracle(options);
  auto report = oracle.Run(workload);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->divergences.empty())
      << "sabotaged index axis must diverge";
  const auto& d = report->divergences.front();
  EXPECT_EQ(d.seed, workload.seed);
  EXPECT_NE(d.design.find("indexes"), std::string::npos) << d.design;
  EXPECT_NE(d.expected_fingerprint, d.actual_fingerprint);
  // Shrinking must have removed statements while keeping the repro.
  EXPECT_LT(d.shrunken_data.size(), workload.data.size());
  // The report is replayable: seed + design + statements + fingerprints.
  std::string repro = d.Repro();
  EXPECT_NE(repro.find("seed:   " + std::to_string(workload.seed)),
            std::string::npos);
  EXPECT_NE(repro.find(d.query), std::string::npos);
}

}  // namespace
}  // namespace imon::engine
