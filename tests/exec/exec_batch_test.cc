// Vectorized execution: batch-boundary correctness and the differential
// oracle between batch sizes and between the compiled (ExprProgram) and
// scalar (tree-walking) expression paths. The invariant mirrors the
// physical-design oracle: batch size and expression compilation may
// change *cost*, never *results*.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "testing/oracle.h"
#include "tests/testing_util.h"

namespace imon::engine {
namespace {

using imon::testing::Fingerprint;

DatabaseOptions Opts(size_t batch_size, bool compiled) {
  DatabaseOptions o;
  o.exec_batch_size = batch_size;
  o.use_compiled_exprs = compiled;
  return o;
}

/// n rows of t(id, v, tag): v cycles 0..9 with every 7th row NULL, tag
/// is 'even'/'odd' with every 11th row NULL. Multi-row INSERTs keep
/// population fast at the 1025-row boundary sizes.
void PopulateRows(Database* db, int n) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE t (id INT, v INT, tag TEXT)").ok());
  std::string sql;
  for (int i = 0; i < n; ++i) {
    if (sql.empty()) {
      sql = "INSERT INTO t VALUES ";
    } else {
      sql += ", ";
    }
    std::string v = i % 7 == 0 ? "NULL" : std::to_string(i % 10);
    std::string tag =
        i % 11 == 0 ? "NULL" : (i % 2 == 0 ? "'even'" : "'odd'");
    sql += "(" + std::to_string(i) + ", " + v + ", " + tag + ")";
    if (i % 256 == 255 || i == n - 1) {
      ASSERT_TRUE(db->Execute(sql).ok());
      sql.clear();
    }
  }
}

const char* const kBatchQueries[] = {
    "SELECT count(*) FROM t",
    "SELECT count(*), count(v), sum(v), min(id), max(id) FROM t",
    "SELECT count(*) FROM t WHERE v > 5",
    "SELECT count(*) FROM t WHERE v IS NULL",
    "SELECT count(*) FROM t WHERE v IS NOT NULL AND tag = 'even'",
    "SELECT v, count(*) FROM t GROUP BY v ORDER BY v",
    "SELECT tag, sum(v) FROM t GROUP BY tag HAVING sum(v) > 10",
    "SELECT id, v + 1 FROM t WHERE id < 20 ORDER BY id",
    "SELECT count(*) FROM t WHERE v IN (1, 3, NULL)",
    "SELECT count(*) FROM t WHERE v BETWEEN 2 AND 8 AND tag LIKE 'e%'",
    "SELECT count(*) FROM t WHERE NOT (v > 3 OR tag = 'odd')",
};

std::vector<std::string> RunAll(Database* db) {
  std::vector<std::string> out;
  for (const char* q : kBatchQueries) {
    auto r = db->Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    out.push_back(r.ok() ? Fingerprint(*r) : "<error>");
  }
  return out;
}

class ExecBatchTest : public ::testing::Test {};

// Row counts straddling the 1024-row default batch: 1 (single short
// batch), 1023 (one row shy), 1024 (exactly one full batch), 1025 (full
// batch + one-row tail).
TEST_F(ExecBatchTest, BatchBoundaryRowCounts) {
  for (int n : {1, 1023, 1024, 1025}) {
    Database scalar{Opts(1024, false)};
    PopulateRows(&scalar, n);
    auto baseline = RunAll(&scalar);

    Database batched{Opts(1024, true)};
    PopulateRows(&batched, n);
    auto got = RunAll(&batched);
    for (size_t i = 0; i < std::size(kBatchQueries); ++i) {
      EXPECT_EQ(got[i], baseline[i])
          << "n=" << n << " diverged on: " << kBatchQueries[i];
    }

    // count(*) sees every row at every boundary.
    auto r = batched.Execute("SELECT count(*) FROM t");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].AsInt(), n) << "n=" << n;
  }
}

// A predicate rejecting every row produces fully-filtered batches; the
// emptied selection vector must short-circuit downstream work without
// emitting rows or disturbing aggregates over the empty set.
TEST_F(ExecBatchTest, AllFilteredBatches) {
  Database db{Opts(256, true)};
  PopulateRows(&db, 1025);

  auto r = db.Execute("SELECT id FROM t WHERE v < 0");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());

  r = db.Execute("SELECT count(*), sum(v) FROM t WHERE v < 0");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r->rows[0][1].is_null()) << "sum over empty set is NULL";

  // A range predicate that empties only interior batches (rows 300..800
  // span full 256-row batches) while head and tail survive.
  r = db.Execute(
      "SELECT count(*) FROM t WHERE id < 300 OR id > 800");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 300 + (1025 - 801));
}

// NULLs interleaved in a batch must propagate through the selection
// vector with SQL three-valued logic: a NULL predicate drops the row, a
// NULL operand poisons only its own row's projection.
TEST_F(ExecBatchTest, NullPropagationThroughSelectionVector) {
  Database db{Opts(4, true)};  // tiny batches force many boundaries
  ASSERT_TRUE(db.Execute("CREATE TABLE n (id INT, v INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO n VALUES (0, 5), (1, NULL), (2, 7), "
                         "(3, NULL), (4, 1), (5, 9), (6, NULL), (7, 2)")
                  .ok());

  auto r = db.Execute("SELECT id FROM n WHERE v > 4 ORDER BY id");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);  // NULL > 4 is UNKNOWN, not true
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
  EXPECT_EQ(r->rows[1][0].AsInt(), 2);
  EXPECT_EQ(r->rows[2][0].AsInt(), 5);

  // NULL v survives a predicate on id; its projection stays NULL.
  r = db.Execute("SELECT v + 10 FROM n WHERE id = 3");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_TRUE(r->rows[0][0].is_null());

  // Kleene OR: NULL OR TRUE is TRUE, so NULL-v rows with id >= 6 pass.
  r = db.Execute("SELECT count(*) FROM n WHERE v > 4 OR id >= 6");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 5);
}

// The headline differential: batch size 1 versus 1024 over the classic
// two-table dataset (joins, grouping, LIKE, IN, DISTINCT, LIMIT) must
// fingerprint identically.
TEST_F(ExecBatchTest, DifferentialBatchSizeOneVsDefault) {
  const char* const kQueries[] = {
      "SELECT count(*) FROM item",
      "SELECT id, price FROM item WHERE id = 123",
      "SELECT grp, count(*), avg(price) FROM item GROUP BY grp",
      "SELECT i.grp, sum(s.qty) FROM item i JOIN sale s ON i.id = s.item_id "
      "GROUP BY i.grp HAVING sum(s.qty) > 10",
      "SELECT DISTINCT tag FROM item WHERE tag LIKE 'tag%' ORDER BY tag",
      "SELECT count(*) FROM item i JOIN sale s ON i.id = s.item_id WHERE "
      "i.grp IN (1, 3, 5) AND s.qty >= 3",
      "SELECT grp, max(price) - min(price) FROM item WHERE price > 100 "
      "GROUP BY grp ORDER BY grp DESC",
      "SELECT id FROM item WHERE tag IS NULL AND grp < 6 ORDER BY id "
      "LIMIT 25",
  };

  Database one{Opts(1, true)};
  imon::testing::Populate(&one, 99);
  Database big{Opts(1024, true)};
  imon::testing::Populate(&big, 99);
  Database scalar{Opts(1024, false)};
  imon::testing::Populate(&scalar, 99);

  for (const char* q : kQueries) {
    auto r1 = one.Execute(q);
    auto r2 = big.Execute(q);
    auto r3 = scalar.Execute(q);
    ASSERT_TRUE(r1.ok()) << q << " -> " << r1.status();
    ASSERT_TRUE(r2.ok()) << q << " -> " << r2.status();
    ASSERT_TRUE(r3.ok()) << q << " -> " << r3.status();
    EXPECT_EQ(Fingerprint(*r1), Fingerprint(*r2))
        << "batch 1 vs 1024 diverged on: " << q;
    EXPECT_EQ(Fingerprint(*r2), Fingerprint(*r3))
        << "compiled vs scalar diverged on: " << q;
  }
}

// Error semantics must not drift between the paths: a divide-by-zero-free
// query with a type error in an unreached branch behaves identically, and
// rows_examined accounting matches on the happy path.
TEST_F(ExecBatchTest, CompiledAndScalarAgreeOnErrorsAndAccounting) {
  Database compiled{Opts(1024, true)};
  PopulateRows(&compiled, 100);
  Database scalar{Opts(1024, false)};
  PopulateRows(&scalar, 100);

  // Arithmetic on text errors the same way on both paths.
  auto rc = compiled.Execute("SELECT tag - 1 FROM t WHERE id = 2");
  auto rs = scalar.Execute("SELECT tag - 1 FROM t WHERE id = 2");
  ASSERT_FALSE(rc.ok());
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rc.status().message(), rs.status().message());

  // INT division by zero yields NULL (not an error) on both paths.
  rc = compiled.Execute("SELECT count(*) FROM t WHERE v / 0 > 1");
  rs = scalar.Execute("SELECT count(*) FROM t WHERE v / 0 > 1");
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(Fingerprint(*rc), Fingerprint(*rs));

  // Full-scan accounting is identical: every row examined once.
  rc = compiled.Execute("SELECT count(*) FROM t WHERE v > 3");
  rs = scalar.Execute("SELECT count(*) FROM t WHERE v > 3");
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rc->stats.rows_examined, rs->stats.rows_examined);
}

}  // namespace
}  // namespace imon::engine
