#include "exec/expression_eval.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace imon::exec {
namespace {

/// Evaluate a constant SQL expression (no column refs).
Value EvalConst(const std::string& text) {
  auto expr = sql::ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << text << " -> " << expr.status();
  optimizer::OutputLayout layout;
  Row row;
  auto v = Eval(**expr, layout, row);
  EXPECT_TRUE(v.ok()) << text << " -> " << v.status();
  return v.ok() ? v.TakeValue() : Value();
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(EvalConst("1 + 2 * 3").AsInt(), 7);
  EXPECT_EQ(EvalConst("(1 + 2) * 3").AsInt(), 9);
  EXPECT_EQ(EvalConst("10 - 4 - 3").AsInt(), 3);
  EXPECT_EQ(EvalConst("7 % 3").AsInt(), 1);
  EXPECT_DOUBLE_EQ(EvalConst("1.5 * 2").AsDouble(), 3.0);
  // Integer division truncates; mixed division is exact.
  EXPECT_EQ(EvalConst("7 / 2").AsInt(), 3);
  EXPECT_DOUBLE_EQ(EvalConst("7.0 / 2").AsDouble(), 3.5);
}

TEST(ExprEvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(EvalConst("1 / 0").is_null());
  EXPECT_TRUE(EvalConst("1.5 / 0").is_null());
  EXPECT_TRUE(EvalConst("5 % 0").is_null());
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_EQ(EvalConst("1 < 2").AsInt(), 1);
  EXPECT_EQ(EvalConst("2 <= 1").AsInt(), 0);
  EXPECT_EQ(EvalConst("'abc' = 'abc'").AsInt(), 1);
  EXPECT_EQ(EvalConst("'abc' < 'abd'").AsInt(), 1);
  EXPECT_EQ(EvalConst("3 <> 4").AsInt(), 1);
  EXPECT_EQ(EvalConst("2 = 2.0").AsInt(), 1);  // cross-numeric
}

TEST(ExprEvalTest, ThreeValuedLogic) {
  // Comparisons with NULL yield NULL.
  EXPECT_TRUE(EvalConst("1 = NULL").is_null());
  EXPECT_TRUE(EvalConst("NULL <> NULL").is_null());
  // Kleene AND/OR.
  EXPECT_EQ(EvalConst("FALSE AND NULL").AsInt(), 0);
  EXPECT_TRUE(EvalConst("TRUE AND NULL").is_null());
  EXPECT_EQ(EvalConst("TRUE OR NULL").AsInt(), 1);
  EXPECT_TRUE(EvalConst("FALSE OR NULL").is_null());
  EXPECT_TRUE(EvalConst("NOT NULL").is_null());
  EXPECT_TRUE(EvalConst("1 + NULL").is_null());
}

TEST(ExprEvalTest, BetweenAndIn) {
  EXPECT_EQ(EvalConst("5 BETWEEN 1 AND 10").AsInt(), 1);
  EXPECT_EQ(EvalConst("0 BETWEEN 1 AND 10").AsInt(), 0);
  EXPECT_EQ(EvalConst("5 NOT BETWEEN 1 AND 10").AsInt(), 0);
  EXPECT_EQ(EvalConst("3 IN (1, 2, 3)").AsInt(), 1);
  EXPECT_EQ(EvalConst("9 IN (1, 2, 3)").AsInt(), 0);
  EXPECT_EQ(EvalConst("9 NOT IN (1, 2, 3)").AsInt(), 1);
  // IN with NULLs: unknown unless matched.
  EXPECT_TRUE(EvalConst("9 IN (1, NULL)").is_null());
  EXPECT_EQ(EvalConst("1 IN (1, NULL)").AsInt(), 1);
}

TEST(ExprEvalTest, IsNull) {
  EXPECT_EQ(EvalConst("NULL IS NULL").AsInt(), 1);
  EXPECT_EQ(EvalConst("1 IS NULL").AsInt(), 0);
  EXPECT_EQ(EvalConst("1 IS NOT NULL").AsInt(), 1);
}

TEST(ExprEvalTest, ScalarFunctions) {
  EXPECT_EQ(EvalConst("abs(-5)").AsInt(), 5);
  EXPECT_DOUBLE_EQ(EvalConst("abs(-2.5)").AsDouble(), 2.5);
  EXPECT_EQ(EvalConst("length('hello')").AsInt(), 5);
  EXPECT_EQ(EvalConst("upper('aBc')").AsText(), "ABC");
  EXPECT_EQ(EvalConst("lower('aBc')").AsText(), "abc");
  EXPECT_TRUE(EvalConst("abs(NULL)").is_null());
}

TEST(ExprEvalTest, TextConcatenation) {
  EXPECT_EQ(EvalConst("'ab' + 'cd'").AsText(), "abcd");
}

TEST(ExprEvalTest, ColumnReferences) {
  auto expr = sql::ParseExpression("x + y");
  ASSERT_TRUE(expr.ok());
  (*expr)->lhs->bound_table = 0;
  (*expr)->lhs->bound_column = 0;
  (*expr)->rhs->bound_table = 0;
  (*expr)->rhs->bound_column = 1;
  auto layout = optimizer::OutputLayout::ForTable(0, 1, 2);
  Row row = {Value::Int(3), Value::Int(4)};
  auto v = Eval(**expr, layout, row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 7);
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool match;
};

class LikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.text, c.pattern), c.match)
      << "'" << c.text << "' LIKE '" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeTest,
    ::testing::Values(LikeCase{"hello", "hello", true},
                      LikeCase{"hello", "h%", true},
                      LikeCase{"hello", "%o", true},
                      LikeCase{"hello", "%ell%", true},
                      LikeCase{"hello", "h_llo", true},
                      LikeCase{"hello", "h__lo", true},
                      LikeCase{"hello", "x%", false},
                      LikeCase{"hello", "hello_", false},
                      LikeCase{"", "%", true}, LikeCase{"", "_", false},
                      LikeCase{"abc", "%%", true},
                      LikeCase{"abcabc", "%abc", true},
                      LikeCase{"aXbXc", "a%b%c", true},
                      LikeCase{"ab", "a%b%c", false}));

TEST(ExprEvalTest, PredicateSemantics) {
  optimizer::OutputLayout layout;
  Row row;
  auto t = sql::ParseExpression("1 < 2");
  auto p = EvalPredicate(**t, layout, row);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(*p);
  // NULL predicates are not satisfied.
  auto n = sql::ParseExpression("NULL = 1");
  p = EvalPredicate(**n, layout, row);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(*p);
}

}  // namespace
}  // namespace imon::exec
