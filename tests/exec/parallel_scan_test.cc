// Morsel-driven parallel scans: the differential invariant is that the
// worker count and the morsel size may change *cost*, never *results*.
// Every query must produce byte-identical output across worker counts
// {1, 2, 4, 8} x both expression paths (compiled / scalar) x every
// storage structure (HEAP, BTREE, HASH, ISAM — full sweeps, range
// scans, secondary-index scans and hash joins all have morsel sources
// now), morsel boundaries must not leak into results, and errors
// raised mid-scan must be deterministic regardless of scheduling.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "testing/oracle.h"
#include "tests/testing_util.h"

namespace imon::engine {
namespace {

using imon::testing::Fingerprint;

DatabaseOptions ParOpts(size_t workers, bool compiled,
                        size_t morsel_pages = 0) {
  DatabaseOptions o;
  o.exec_workers = workers;
  o.use_compiled_exprs = compiled;
  if (morsel_pages > 0) o.exec_morsel_pages = morsel_pages;
  return o;
}

/// Order-sensitive rendering: unlike Fingerprint (which sorts rows),
/// this preserves emission order so ORDER BY / LIMIT output and the
/// morsel gather order are part of the comparison.
std::string OrderedDump(const QueryResult& r) {
  std::string out;
  for (const Row& row : r.rows) {
    for (const Value& v : row) {
      out += v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

// The mix exercises every morsel-eligible shape: inner filtered scans,
// root aggregates (plain and grouped), top-k via ORDER BY + LIMIT, bare
// LIMIT pushdown, DISTINCT, and joins whose probe side is morselized.
// item.price values are exact quarter multiples, so double sums are
// dyadic and associativity cannot introduce drift.
const char* const kParallelQueries[] = {
    "SELECT count(*) FROM item",
    "SELECT count(*), count(tag), sum(price), min(price), max(price) "
    "FROM item",
    "SELECT grp, count(*), sum(price) FROM item GROUP BY grp ORDER BY grp",
    "SELECT id, price FROM item WHERE grp < 4 AND tag IS NOT NULL "
    "ORDER BY id",
    "SELECT id FROM item WHERE tag IS NULL AND grp < 6 ORDER BY id LIMIT 25",
    "SELECT id, grp FROM item WHERE price > 50.0 LIMIT 10",
    "SELECT DISTINCT grp FROM item ORDER BY grp",
    "SELECT id, price FROM item ORDER BY price, id LIMIT 7",
    "SELECT i.grp, sum(s.qty) FROM item i JOIN sale s ON i.id = s.item_id "
    "GROUP BY i.grp ORDER BY i.grp",
    "SELECT count(*) FROM sale WHERE qty > 2 AND day BETWEEN 10 AND 200",
};

std::vector<std::string> RunAll(Database* db) {
  std::vector<std::string> out;
  for (const char* q : kParallelQueries) {
    auto r = db->Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    out.push_back(r.ok() ? OrderedDump(*r) : "<error>");
  }
  return out;
}

class ParallelScanTest : public ::testing::Test {};

TEST_F(ParallelScanTest, WorkerCountsAndExprPathsAgree) {
  Database baseline_db{ParOpts(1, false)};
  imon::testing::Populate(&baseline_db, /*seed=*/7);
  auto baseline = RunAll(&baseline_db);

  for (size_t workers : {1u, 2u, 4u, 8u}) {
    for (bool compiled : {false, true}) {
      Database db{ParOpts(workers, compiled)};
      imon::testing::Populate(&db, /*seed=*/7);
      auto got = RunAll(&db);
      for (size_t i = 0; i < std::size(kParallelQueries); ++i) {
        EXPECT_EQ(got[i], baseline[i])
            << "workers=" << workers << " compiled=" << compiled
            << " diverged on: " << kParallelQueries[i];
      }
    }
  }
}

// The structure matrix drives every per-structure morsel source:
// B-Tree full sweeps and leaf ranges, ISAM directory-routed ranges,
// HASH bucket sweeps (plus the serial hash point probe), a
// secondary-index scan, and a hash join whose build side is
// partitioned across the pool. morsel_pages=1 on the small dataset
// forces real multi-morsel decompositions for each of them.
const char* const kStructureQueries[] = {
    "SELECT count(*), count(tag), sum(price), min(id), max(id) FROM item",
    "SELECT id, grp, price FROM item WHERE id >= 57 AND id < 311 "
    "ORDER BY id",
    "SELECT id, tag FROM item WHERE id > 380 ORDER BY id",
    "SELECT count(*) FROM item WHERE id = 123",
    "SELECT id, price FROM item WHERE grp = 3 ORDER BY id",
    "SELECT grp, count(*) FROM item WHERE price < 5000.0 GROUP BY grp "
    "ORDER BY grp",
    "SELECT i.grp, count(*), sum(s.qty) FROM item i "
    "JOIN sale s ON i.id = s.item_id WHERE s.day < 20 "
    "GROUP BY i.grp ORDER BY i.grp",
    "SELECT count(*) FROM sale WHERE item_id >= 100 AND item_id < 300",
};

std::vector<std::string> RunStructure(Database* db) {
  std::vector<std::string> out;
  for (const char* q : kStructureQueries) {
    auto r = db->Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
    out.push_back(r.ok() ? OrderedDump(*r) : "<error>");
  }
  return out;
}

TEST_F(ParallelScanTest, StructureMatrixAgreesAcrossWorkers) {
  for (const char* structure : {"HEAP", "BTREE", "HASH", "ISAM"}) {
    std::vector<std::string> baseline;
    for (size_t workers : {1u, 2u, 4u, 8u}) {
      for (bool compiled : {false, true}) {
        Database db{ParOpts(workers, compiled, /*morsel_pages=*/1)};
        imon::testing::Populate(&db, /*seed=*/7);
        if (std::string(structure) != "HEAP") {
          ASSERT_TRUE(
              db.Execute(std::string("MODIFY item TO ") + structure).ok());
          ASSERT_TRUE(
              db.Execute(std::string("MODIFY sale TO ") + structure).ok());
        }
        ASSERT_TRUE(db.Execute("CREATE INDEX i_grp ON item (grp)").ok());
        ASSERT_TRUE(db.Execute("ANALYZE item").ok());
        ASSERT_TRUE(db.Execute("ANALYZE sale").ok());
        auto got = RunStructure(&db);
        if (baseline.empty()) {
          baseline = got;
        } else {
          for (size_t i = 0; i < std::size(kStructureQueries); ++i) {
            EXPECT_EQ(got[i], baseline[i])
                << "structure=" << structure << " workers=" << workers
                << " compiled=" << compiled
                << " diverged on: " << kStructureQueries[i];
          }
        }
      }
    }
  }
}

// A hash join with the smaller relation as build side: the partitioned
// parallel build must emit probe matches in the same order as the
// serial build for any worker count, including under ORDER BY-free
// queries where emission order is directly visible.
TEST_F(ParallelScanTest, HashJoinBuildDeterministicAcrossWorkers) {
  std::string baseline;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    Database db{ParOpts(workers, /*compiled=*/true, /*morsel_pages=*/1)};
    imon::testing::Populate(&db, /*seed=*/13);
    auto r = db.Execute(
        "SELECT i.id, i.grp, s.qty, s.day FROM item i "
        "JOIN sale s ON i.id = s.item_id WHERE i.grp < 9");
    ASSERT_TRUE(r.ok()) << r.status();
    std::string got = OrderedDump(*r);
    if (workers == 1) {
      baseline = got;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(got, baseline) << "workers=" << workers;
    }
  }
}

// Degenerate morsel geometries: one page per morsel maximizes the
// number of partial results to merge; a huge morsel collapses the scan
// to a single task (the inline path). Both must match the default.
TEST_F(ParallelScanTest, MorselSizeDoesNotChangeResults) {
  Database baseline_db{ParOpts(4, true)};
  imon::testing::Populate(&baseline_db, /*seed=*/11);
  auto baseline = RunAll(&baseline_db);

  for (size_t morsel_pages : {size_t{1}, size_t{1} << 20}) {
    Database db{ParOpts(4, true, morsel_pages)};
    imon::testing::Populate(&db, /*seed=*/11);
    auto got = RunAll(&db);
    for (size_t i = 0; i < std::size(kParallelQueries); ++i) {
      EXPECT_EQ(got[i], baseline[i])
          << "morsel_pages=" << morsel_pages
          << " diverged on: " << kParallelQueries[i];
    }
  }
}

TEST_F(ParallelScanTest, EmptyTableAcrossWorkerCounts) {
  for (size_t workers : {1u, 4u}) {
    Database db{ParOpts(workers, true, /*morsel_pages=*/1)};
    ASSERT_TRUE(db.Execute("CREATE TABLE empty_t (a INT, b TEXT)").ok());
    auto rows = db.Execute("SELECT a, b FROM empty_t WHERE a > 0");
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->rows.empty());
    auto agg = db.Execute("SELECT count(*), sum(a) FROM empty_t");
    ASSERT_TRUE(agg.ok());
    ASSERT_EQ(agg->rows.size(), 1u);
    EXPECT_EQ(agg->rows[0][0].AsInt(), 0);
    EXPECT_TRUE(agg->rows[0][1].is_null());
  }
}

// A runtime error ('arithmetic on text value') fires only on rows with
// a non-NULL tag, i.e. mid-scan inside some morsel. Which morsel hits
// it first must not depend on scheduling: morsels are claimed in index
// order and the gather reports the lowest-indexed morsel's error.
TEST_F(ParallelScanTest, MidScanErrorsAreDeterministic) {
  std::string serial_msg;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    Database db{ParOpts(workers, /*compiled=*/false, /*morsel_pages=*/1)};
    imon::testing::Populate(&db, /*seed=*/7);
    auto r = db.Execute("SELECT id + tag FROM item");
    ASSERT_FALSE(r.ok()) << "workers=" << workers;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    if (workers == 1) {
      serial_msg = std::string(r.status().message());
    } else {
      EXPECT_EQ(std::string(r.status().message()), serial_msg)
          << "workers=" << workers;
    }
  }
}

// Full-table scans examine every row exactly once no matter how the
// pages are carved into morsels or which lane runs them.
TEST_F(ParallelScanTest, RowsExaminedParityOnFullScans) {
  const char* q = "SELECT count(*) FROM item WHERE grp < 5";
  int64_t serial_examined = -1;
  for (size_t workers : {1u, 4u}) {
    for (bool compiled : {false, true}) {
      Database db{ParOpts(workers, compiled, /*morsel_pages=*/1)};
      imon::testing::Populate(&db, /*seed=*/7);
      auto r = db.Execute(q);
      ASSERT_TRUE(r.ok());
      if (serial_examined < 0) {
        serial_examined = r->stats.rows_examined;
      } else {
        EXPECT_EQ(r->stats.rows_examined, serial_examined)
            << "workers=" << workers << " compiled=" << compiled;
      }
    }
  }
}

// Many client threads issuing queries against one shared database while
// each query fans out over the worker pool: the TSan target for the
// whole scan path (shard locks, worker pool, per-lane scratch).
TEST_F(ParallelScanTest, ConcurrentClientsOnSharedDatabase) {
  Database db{ParOpts(4, true, /*morsel_pages=*/1)};
  imon::testing::Populate(&db, /*seed=*/3);
  auto expected_r = db.Execute(
      "SELECT grp, count(*), sum(price) FROM item GROUP BY grp ORDER BY grp");
  ASSERT_TRUE(expected_r.ok());
  std::string expected = OrderedDump(*expected_r);

  std::vector<std::thread> clients;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&db, &expected, &mismatches, t] {
      for (int iter = 0; iter < 10; ++iter) {
        auto r = db.Execute(
            "SELECT grp, count(*), sum(price) FROM item "
            "GROUP BY grp ORDER BY grp");
        if (!r.ok() || OrderedDump(*r) != expected) ++mismatches[t];
      }
    });
  }
  for (auto& c : clients) c.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0) << "client " << t;
}

TEST_F(ParallelScanTest, ParallelCountersSurfaceInMetrics) {
  Database db{ParOpts(2, true, /*morsel_pages=*/1)};
  imon::testing::Populate(&db, /*seed=*/5);
  ASSERT_TRUE(db.Execute("SELECT count(*) FROM sale").ok());

  EXPECT_GT(db.metrics()->GetCounter("exec.morsels_dispatched")->Value(), 0);
  EXPECT_GT(db.metrics()->GetCounter("exec.morsels_total")->Value(), 0);
  EXPECT_GT(db.metrics()->GetCounter("exec.parallel_scans.heap")->Value(), 0);
  EXPECT_GT(db.metrics()->GetGauge("exec.morsel_lanes")->Value(), 0);

  // Per-structure scan counters follow the access path actually run.
  ASSERT_TRUE(db.Execute("MODIFY sale TO BTREE").ok());
  ASSERT_TRUE(db.Execute("SELECT count(*) FROM sale").ok());
  EXPECT_GT(db.metrics()->GetCounter("exec.parallel_scans.btree")->Value(), 0);
  ASSERT_TRUE(db.Execute("MODIFY sale TO HASH").ok());
  ASSERT_TRUE(db.Execute("SELECT count(*) FROM sale").ok());
  EXPECT_GT(db.metrics()->GetCounter("exec.parallel_scans.hash")->Value(), 0);

  std::vector<std::string> want = {
      "buffer_pool.shard_lock_wait", "buffer_pool.shard0.hits",
      "buffer_pool.shard0.misses",   "buffer_pool.shard0.evictions",
      "exec.morsels_dispatched",     "exec.worker_busy",
      "exec.morsels_total",          "exec.morsel_lanes",
  };
  auto values = db.metrics()->SnapshotValues();
  for (const std::string& name : want) {
    bool found = false;
    for (const auto& mv : values) found = found || mv.name == name;
    EXPECT_TRUE(found) << "metric not registered: " << name;
  }
}

// Open-time validation: sizing knobs of zero are rejected with a clear
// InvalidArgument naming the field, before any resources are created.
TEST_F(ParallelScanTest, OpenRejectsZeroSizingOptions) {
  struct Case {
    const char* field;
    void (*set)(DatabaseOptions*);
  };
  const Case cases[] = {
      {"exec_batch_size",
       [](DatabaseOptions* o) { o->exec_batch_size = 0; }},
      {"exec_workers", [](DatabaseOptions* o) { o->exec_workers = 0; }},
      {"exec_morsel_pages",
       [](DatabaseOptions* o) { o->exec_morsel_pages = 0; }},
      {"buffer_pool_shards",
       [](DatabaseOptions* o) { o->buffer_pool_shards = 0; }},
      {"buffer_pool_pages",
       [](DatabaseOptions* o) { o->buffer_pool_pages = 0; }},
  };
  for (const Case& c : cases) {
    DatabaseOptions o;
    c.set(&o);
    auto db = Database::Open(o);
    ASSERT_FALSE(db.ok()) << c.field;
    EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument) << c.field;
    EXPECT_NE(std::string(db.status().message()).find(c.field),
              std::string::npos)
        << db.status().message();
  }

  DatabaseOptions good;
  good.exec_workers = 2;
  auto db = Database::Open(good);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->Execute("CREATE TABLE ok_t (a INT)").ok());
}

}  // namespace
}  // namespace imon::engine
