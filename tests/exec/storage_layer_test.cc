#include "exec/storage_layer.h"

#include <gtest/gtest.h>

#include <set>

namespace imon::exec {
namespace {

using catalog::ColumnInfo;
using catalog::IndexInfo;
using catalog::StorageStructure;
using catalog::TableInfo;

class StorageLayerTest : public ::testing::Test {
 protected:
  StorageLayerTest() : disk_(), pool_(&disk_, 512), layer_(&disk_, &pool_) {}

  TableInfo MakeTable(StorageStructure structure, bool with_pk = true) {
    TableInfo info;
    info.id = next_id_++;
    info.name = "t" + std::to_string(info.id);
    ColumnInfo id;
    id.name = "id";
    id.type = TypeId::kInt;
    id.ordinal = 0;
    ColumnInfo text;
    text.name = "txt";
    text.type = TypeId::kText;
    text.ordinal = 1;
    info.columns = {id, text};
    info.structure = structure;
    info.main_page_target = 2;
    if (with_pk) info.primary_key = {0};
    EXPECT_TRUE(layer_.CreateTableStorage(&info).ok());
    return info;
  }

  Row MakeRow(int64_t id, const std::string& text) {
    return {Value::Int(id), Value::Text(text)};
  }

  storage::DiskManager disk_;
  storage::BufferPool pool_;
  StorageLayer layer_;
  int64_t next_id_ = 1;
};

TEST_F(StorageLayerTest, HeapInsertFetchDelete) {
  TableInfo t = MakeTable(StorageStructure::kHeap);
  auto loc = layer_.Insert(t, {}, MakeRow(1, "one"));
  ASSERT_TRUE(loc.ok());
  auto row = layer_.Fetch(t, *loc);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsText(), "one");
  ASSERT_TRUE(layer_.Delete(t, {}, *loc, *row).ok());
  EXPECT_TRUE(layer_.Fetch(t, *loc).status().IsNotFound());
}

TEST_F(StorageLayerTest, BtreeInsertKeepsPrimaryOrder) {
  TableInfo t = MakeTable(StorageStructure::kBtree);
  for (int64_t id : {5, 1, 9, 3}) {
    ASSERT_TRUE(layer_.Insert(t, {}, MakeRow(id, "r")).ok());
  }
  std::vector<int64_t> order;
  ASSERT_TRUE(layer_
                  .Scan(t, [&](const Locator&, const Row& row) {
                    order.push_back(row[0].AsInt());
                    return true;
                  })
                  .ok());
  EXPECT_EQ(order, (std::vector<int64_t>{1, 3, 5, 9}));
}

TEST_F(StorageLayerTest, BtreePrimaryKeyDuplicateRejectedAtomically) {
  TableInfo t = MakeTable(StorageStructure::kBtree);
  IndexInfo idx;
  idx.id = 100;
  idx.name = "t_txt";
  idx.table_id = t.id;
  idx.key_columns = {1};
  ASSERT_TRUE(layer_.CreateIndexStorage(&idx, t).ok());
  std::vector<IndexInfo> indexes = {idx};

  ASSERT_TRUE(layer_.Insert(t, indexes, MakeRow(1, "a")).ok());
  auto dup = layer_.Insert(t, indexes, MakeRow(1, "b"));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  // Nothing half-inserted: base row count and index agree.
  int64_t rows = 0;
  layer_.Scan(t, [&](const Locator&, const Row&) {
    ++rows;
    return true;
  }).ok();
  EXPECT_EQ(rows, 1);
  int64_t index_entries = 0;
  layer_
      .IndexScan(idx, t, {}, std::nullopt, std::nullopt,
                 [&](const Locator&) {
                   ++index_entries;
                   return true;
                 })
      .ok();
  EXPECT_EQ(index_entries, 1);
}

TEST_F(StorageLayerTest, UniqueSecondaryIndexEnforced) {
  TableInfo t = MakeTable(StorageStructure::kHeap, /*with_pk=*/false);
  IndexInfo idx;
  idx.id = 101;
  idx.name = "uniq_txt";
  idx.table_id = t.id;
  idx.key_columns = {1};
  idx.unique = true;
  ASSERT_TRUE(layer_.CreateIndexStorage(&idx, t).ok());
  std::vector<IndexInfo> indexes = {idx};
  ASSERT_TRUE(layer_.Insert(t, indexes, MakeRow(1, "same")).ok());
  EXPECT_EQ(layer_.Insert(t, indexes, MakeRow(2, "same")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(StorageLayerTest, IndexScanRangeAndEquality) {
  TableInfo t = MakeTable(StorageStructure::kHeap);
  IndexInfo idx;
  idx.id = 102;
  idx.name = "by_id";
  idx.table_id = t.id;
  idx.key_columns = {0};
  std::vector<IndexInfo> indexes;
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(layer_.Insert(t, indexes, MakeRow(i, "r")).ok());
  }
  ASSERT_TRUE(layer_.CreateIndexStorage(&idx, t).ok());  // backfill path

  auto count_range = [&](std::optional<optimizer::KeyBound> lo,
                         std::optional<optimizer::KeyBound> hi) {
    int64_t n = 0;
    EXPECT_TRUE(layer_
                    .IndexScan(idx, t, {}, lo, hi,
                               [&](const Locator&) {
                                 ++n;
                                 return true;
                               })
                    .ok());
    return n;
  };
  EXPECT_EQ(count_range(optimizer::KeyBound{Value::Int(10), true},
                        optimizer::KeyBound{Value::Int(19), true}),
            10);
  EXPECT_EQ(count_range(optimizer::KeyBound{Value::Int(10), false},
                        optimizer::KeyBound{Value::Int(19), false}),
            8);
  EXPECT_EQ(count_range(optimizer::KeyBound{Value::Int(95), true},
                        std::nullopt),
            5);
  EXPECT_EQ(count_range(std::nullopt,
                        optimizer::KeyBound{Value::Int(4), true}),
            5);

  // Equality prefix.
  int64_t exact = 0;
  ASSERT_TRUE(layer_
                  .IndexScan(idx, t, {Value::Int(42)}, std::nullopt,
                             std::nullopt,
                             [&](const Locator& loc) {
                               auto row = layer_.Fetch(t, loc);
                               EXPECT_TRUE(row.ok());
                               EXPECT_EQ((*row)[0].AsInt(), 42);
                               ++exact;
                               return true;
                             })
                  .ok());
  EXPECT_EQ(exact, 1);
}

TEST_F(StorageLayerTest, UpdateMaintainsIndexes) {
  TableInfo t = MakeTable(StorageStructure::kHeap);
  IndexInfo idx;
  idx.id = 103;
  idx.name = "by_txt";
  idx.table_id = t.id;
  idx.key_columns = {1};
  ASSERT_TRUE(layer_.CreateIndexStorage(&idx, t).ok());
  std::vector<IndexInfo> indexes = {idx};

  auto loc = layer_.Insert(t, indexes, MakeRow(1, "old"));
  ASSERT_TRUE(loc.ok());
  auto new_loc =
      layer_.Update(t, indexes, *loc, MakeRow(1, "old"), MakeRow(1, "new"));
  ASSERT_TRUE(new_loc.ok());

  auto find = [&](const std::string& key) {
    int64_t n = 0;
    layer_
        .IndexScan(idx, t, {Value::Text(key)}, std::nullopt, std::nullopt,
                   [&](const Locator&) {
                     ++n;
                     return true;
                   })
        .ok();
    return n;
  };
  EXPECT_EQ(find("old"), 0);
  EXPECT_EQ(find("new"), 1);
}

TEST_F(StorageLayerTest, ModifyHeapToBtreeAndBack) {
  TableInfo t = MakeTable(StorageStructure::kHeap);
  IndexInfo idx;
  idx.id = 104;
  idx.name = "by_txt2";
  idx.table_id = t.id;
  idx.key_columns = {1};
  ASSERT_TRUE(layer_.CreateIndexStorage(&idx, t).ok());
  std::vector<IndexInfo> indexes = {idx};
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        layer_.Insert(t, indexes, MakeRow(i, "x" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(layer_.RefreshTableStats(&t).ok());
  EXPECT_GT(t.overflow_pages, 0);

  ASSERT_TRUE(layer_.ModifyStructure(&t, &indexes, StorageStructure::kBtree).ok());
  EXPECT_EQ(t.structure, StorageStructure::kBtree);
  EXPECT_EQ(t.overflow_pages, 0);
  EXPECT_EQ(t.row_count, 500);
  // Secondary index rebuilt and queryable with btree locators (the
  // rebuilt IndexInfo in `indexes` carries the new file id).
  int64_t n = 0;
  ASSERT_TRUE(layer_
                  .IndexScan(indexes[0], t, {Value::Text("x42")}, std::nullopt,
                             std::nullopt,
                             [&](const Locator& loc) {
                               auto row = layer_.Fetch(t, loc);
                               EXPECT_TRUE(row.ok());
                               EXPECT_EQ((*row)[0].AsInt(), 42);
                               ++n;
                               return true;
                             })
                  .ok());
  EXPECT_EQ(n, 1);

  // And back to heap.
  ASSERT_TRUE(layer_.ModifyStructure(&t, &indexes, StorageStructure::kHeap).ok());
  EXPECT_EQ(t.structure, StorageStructure::kHeap);
  EXPECT_EQ(t.row_count, 500);
}

TEST_F(StorageLayerTest, ScanPrimaryRange) {
  TableInfo t = MakeTable(StorageStructure::kBtree);
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(layer_.Insert(t, {}, MakeRow(i, "r")).ok());
  }
  std::vector<int64_t> seen;
  ASSERT_TRUE(layer_
                  .ScanPrimaryRange(
                      t, {}, optimizer::KeyBound{Value::Int(10), true},
                      optimizer::KeyBound{Value::Int(14), true},
                      [&](const Locator&, const Row& row) {
                        seen.push_back(row[0].AsInt());
                        return true;
                      })
                  .ok());
  EXPECT_EQ(seen, (std::vector<int64_t>{10, 11, 12, 13, 14}));
}

TEST_F(StorageLayerTest, PagesAccounting) {
  TableInfo t = MakeTable(StorageStructure::kHeap);
  IndexInfo idx;
  idx.id = 105;
  idx.name = "acct";
  idx.table_id = t.id;
  idx.key_columns = {0};
  ASSERT_TRUE(layer_.CreateIndexStorage(&idx, t).ok());
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(layer_.Insert(t, {idx}, MakeRow(i, "pad")).ok());
  }
  auto pages = layer_.IndexPages(idx);
  ASSERT_TRUE(pages.ok());
  EXPECT_GT(*pages, 1);
}

}  // namespace
}  // namespace imon::exec
