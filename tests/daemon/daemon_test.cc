#include "daemon/daemon.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ima/ima.h"
#include "testing/fault_injector.h"

namespace imon::daemon {
namespace {

using engine::Database;
using engine::DatabaseOptions;
using engine::QueryResult;

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest()
      : clock_(1000000000),
        monitored_(MonitoredOptions()),
        workload_db_(WorkloadOptions()) {
    EXPECT_TRUE(ima::RegisterImaTables(&monitored_).ok());
  }

  DatabaseOptions MonitoredOptions() {
    DatabaseOptions o;
    o.name = "monitored";
    o.clock = &clock_;
    return o;
  }
  DatabaseOptions WorkloadOptions() {
    DatabaseOptions o;
    o.name = "workload";
    o.monitor.enabled = false;  // the workload DB itself is not monitored
    o.clock = &clock_;
    return o;
  }

  DaemonConfig FastConfig() {
    DaemonConfig c;
    c.poll_interval = std::chrono::milliseconds(5);
    c.polls_per_flush = 2;
    c.retention = std::chrono::seconds(3600);
    c.flushes_per_purge = 1;
    return c;
  }

  QueryResult MustExec(Database* db, const std::string& sql) {
    auto r = db->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? r.TakeValue() : QueryResult{};
  }

  int64_t CountRows(const std::string& table) {
    QueryResult r = MustExec(&workload_db_, "SELECT count(*) FROM " + table);
    return r.rows[0][0].AsInt();
  }

  SimulatedClock clock_;
  Database monitored_;
  Database workload_db_;
};

TEST_F(DaemonTest, SchemaCreationIsIdempotent) {
  ASSERT_TRUE(CreateWorkloadSchema(&workload_db_).ok());
  ASSERT_TRUE(CreateWorkloadSchema(&workload_db_).ok());
  EXPECT_TRUE(workload_db_.catalog()->HasTable("wl_workload"));
  EXPECT_TRUE(workload_db_.catalog()->HasTable("wl_statistics"));
}

TEST_F(DaemonTest, PollAndFlushPersistWorkload) {
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "INSERT INTO t VALUES (1)");
  MustExec(&monitored_, "SELECT v FROM t WHERE v = 1");

  ASSERT_TRUE(daemon.PollOnce().ok());  // buffers, no flush yet
  EXPECT_EQ(CountRows("wl_workload"), 0);
  ASSERT_TRUE(daemon.PollOnce().ok());  // second poll triggers flush
  EXPECT_GE(CountRows("wl_workload"), 3);
  EXPECT_GE(CountRows("wl_statements"), 3);
  EXPECT_GE(CountRows("wl_statistics"), 2);  // one sample per poll
  EXPECT_GE(CountRows("wl_tables"), 1);

  auto stats = daemon.stats();
  EXPECT_EQ(stats.polls, 2);
  EXPECT_EQ(stats.flushes, 1);
  EXPECT_GT(stats.rows_written, 0);
  EXPECT_GT(stats.bytes_written_estimate, 0);
}

TEST_F(DaemonTest, IncrementalReadsDoNotDuplicate) {
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  int64_t after_first = CountRows("wl_workload");

  // No new statements: two more polls add no workload rows.
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  EXPECT_EQ(CountRows("wl_workload"), after_first);

  MustExec(&monitored_, "SELECT v FROM t WHERE v = 9");
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  EXPECT_EQ(CountRows("wl_workload"), after_first + 1);
}

TEST_F(DaemonTest, DaemonPollingIsNotSelfObserved) {
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());
  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(daemon.PollOnce().ok());
  // The daemon's own IMA SELECTs must not appear in the statement history.
  for (const auto& s : monitored_.monitor()->SnapshotStatements()) {
    EXPECT_EQ(s.text.find("imp_"), std::string::npos) << s.text;
  }
}

TEST_F(DaemonTest, RetentionPurgesOldRows) {
  DaemonConfig config = FastConfig();
  config.retention = std::chrono::seconds(100);
  StorageDaemon daemon(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  int64_t persisted = CountRows("wl_workload");
  ASSERT_GE(persisted, 1);

  // Advance past retention; next flush purges everything old.
  clock_.AdvanceSeconds(200);
  ASSERT_TRUE(daemon.PurgeExpired().ok());
  EXPECT_EQ(CountRows("wl_workload"), 0);
  EXPECT_EQ(CountRows("wl_statistics"), 0);
  EXPECT_GT(daemon.stats().rows_purged, 0);
}

TEST_F(DaemonTest, BytesWrittenAndAlertsMirrorIntoMetricsRegistry) {
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());
  ASSERT_TRUE(daemon
                  .AddAlertRule("any_statement", "wl_statements",
                                "frequency >= 1", "statement persisted")
                  .ok());
  daemon.SetAlertHandler([](const engine::AlertEvent&) {});

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());  // flush -> appends + alerts

  auto stats = daemon.stats();
  ASSERT_GT(stats.bytes_written_estimate, 0);
  ASSERT_GE(stats.alerts_raised, 1);

  // DaemonStats and the imp_metrics registry must agree.
  int64_t bytes_metric = -1;
  int64_t alerts_metric = -1;
  auto r = monitored_.Execute("SELECT name, value FROM imp_metrics");
  ASSERT_TRUE(r.ok());
  for (const Row& row : r->rows) {
    if (row[0].AsText() == "daemon.bytes_written") {
      bytes_metric = row[1].AsInt();
    } else if (row[0].AsText() == "daemon.alerts_raised") {
      alerts_metric = row[1].AsInt();
    }
  }
  EXPECT_EQ(bytes_metric, stats.bytes_written_estimate);
  EXPECT_EQ(alerts_metric, stats.alerts_raised);
}

TEST_F(DaemonTest, RetentionBoundaryIsInclusiveAtExactlySevenDays) {
  // The paper keeps entries "for seven days"; a row aged exactly the
  // retention window is expired, one tick younger survives.
  DaemonConfig config = FastConfig();
  config.retention = std::chrono::seconds(7 * 24 * 3600);
  StorageDaemon daemon(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  clock_.AdvanceSeconds(8 * 24 * 3600);  // so 7-days-ago is a valid stamp
  int64_t retention_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(config.retention)
          .count();
  int64_t now = clock_.NowMicros();
  int64_t boundary = now - retention_micros;  // stamped precisely 7d ago
  MustExec(&workload_db_,
           "INSERT INTO wl_statements VALUES (" + std::to_string(boundary) +
               ", 1, 'boundary', 1, 0, 0, 0)");
  MustExec(&workload_db_,
           "INSERT INTO wl_statements VALUES (" +
               std::to_string(boundary + 1) + ", 2, 'survivor', 1, 0, 0, 0)");
  ASSERT_EQ(CountRows("wl_statements"), 2);

  ASSERT_TRUE(daemon.PurgeExpired().ok());
  EXPECT_EQ(CountRows("wl_statements"), 1)
      << "exactly-retention-old row must purge, one microsecond newer "
         "must survive";
  QueryResult r = MustExec(&workload_db_,
                           "SELECT query_text FROM wl_statements");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "survivor");
  EXPECT_EQ(daemon.stats().rows_purged, 1);
}

TEST_F(DaemonTest, TemplatesOutliveRetentionPurgeAcrossDaemonRestart) {
  // Compressed workload history must survive the raw-row retention purge,
  // and a daemon restarted between a purge and the next flush must not
  // double-count what its predecessor already persisted.
  DaemonConfig config = FastConfig();
  config.retention = std::chrono::seconds(100);

  auto template_executions = [&]() -> int64_t {
    QueryResult r = MustExec(
        &workload_db_, "SELECT template_text, executions FROM wl_templates");
    for (const Row& row : r.rows) {
      if (row[0].AsText().find("where v =") != std::string::npos) {
        return row[1].AsInt();
      }
    }
    return -1;
  };

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  {
    StorageDaemon daemon(&monitored_, &workload_db_, config, &clock_);
    ASSERT_TRUE(daemon.Initialize().ok());
    // Five literal variants collapse into one template.
    for (int i = 1; i <= 5; ++i) {
      MustExec(&monitored_, "SELECT v FROM t WHERE v = " + std::to_string(i));
    }
    ASSERT_TRUE(daemon.PollOnce().ok());
    ASSERT_TRUE(daemon.PollOnce().ok());  // flush
    ASSERT_EQ(template_executions(), 5);
    ASSERT_GE(CountRows("wl_statements"), 1);

    clock_.AdvanceSeconds(200);
    ASSERT_TRUE(daemon.PurgeExpired().ok());
    EXPECT_EQ(CountRows("wl_statements"), 0);
    EXPECT_EQ(CountRows("wl_workload"), 0);
    // Raw rows are gone; the compressed history is retention-exempt.
    EXPECT_EQ(template_executions(), 5);
  }  // daemon gone: restart lands between the purge and the next flush

  {
    StorageDaemon daemon(&monitored_, &workload_db_, config, &clock_);
    ASSERT_TRUE(daemon.Initialize().ok());
    for (int i = 6; i <= 8; ++i) {
      MustExec(&monitored_, "SELECT v FROM t WHERE v = " + std::to_string(i));
    }
    ASSERT_TRUE(daemon.PollOnce().ok());
    ASSERT_TRUE(daemon.PollOnce().ok());
    // Same monitor incarnation: the new daemon resumes its flush deltas
    // from the persisted src_* baseline. Re-adding the monitor's full
    // cumulative count would report 13 here.
    EXPECT_EQ(template_executions(), 8);
  }

  // Full restart: a fresh monitored engine means a new monitor
  // incarnation whose counts start over; they accumulate onto the
  // persisted base instead of resuming a stale baseline.
  Database monitored2(MonitoredOptions());
  ASSERT_TRUE(ima::RegisterImaTables(&monitored2).ok());
  MustExec(&monitored2, "CREATE TABLE t (v INT)");
  {
    StorageDaemon daemon(&monitored2, &workload_db_, config, &clock_);
    ASSERT_TRUE(daemon.Initialize().ok());
    MustExec(&monitored2, "SELECT v FROM t WHERE v = 9");
    MustExec(&monitored2, "SELECT v FROM t WHERE v = 10");
    ASSERT_TRUE(daemon.PollOnce().ok());
    ASSERT_TRUE(daemon.PollOnce().ok());
    EXPECT_EQ(template_executions(), 10);
  }
}

TEST_F(DaemonTest, AlertRulesFireOnThreshold) {
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());
  ASSERT_TRUE(daemon
                  .AddAlertRule("deadlock_alert", "wl_statistics",
                                "deadlocks >= 1",
                                "deadlocks observed on the system")
                  .ok());
  std::vector<engine::AlertEvent> alerts;
  daemon.SetAlertHandler(
      [&](const engine::AlertEvent& e) { alerts.push_back(e); });

  // Produce a deadlock on the monitored engine.
  MustExec(&monitored_, "CREATE TABLE x (v INT)");
  MustExec(&monitored_, "CREATE TABLE y (v INT)");
  MustExec(&monitored_, "INSERT INTO x VALUES (1)");
  MustExec(&monitored_, "INSERT INTO y VALUES (1)");
  auto s1 = monitored_.CreateSession();
  auto s2 = monitored_.CreateSession();
  ASSERT_TRUE(monitored_.Execute("BEGIN", s1.get()).ok());
  ASSERT_TRUE(monitored_.Execute("BEGIN", s2.get()).ok());
  ASSERT_TRUE(monitored_.Execute("UPDATE x SET v = 2", s1.get()).ok());
  ASSERT_TRUE(monitored_.Execute("UPDATE y SET v = 2", s2.get()).ok());
  std::thread t([&] {
    monitored_.Execute("UPDATE y SET v = 3", s1.get()).ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  monitored_.Execute("UPDATE x SET v = 3", s2.get()).ok();
  t.join();
  monitored_.Execute("COMMIT", s1.get()).ok();
  monitored_.Execute("COMMIT", s2.get()).ok();

  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].trigger_name, "deadlock_alert");
  EXPECT_GE(daemon.stats().alerts_raised, 1);
}

#ifndef IMON_METRICS_DISABLED

// History alert rules fire after `sustain_polls` breaching evaluations
// and clear on the first clean one — and a poll killed by the fault
// injector merely delays that progression, it never corrupts it. Two
// identical runs (same seed, same simulated clock) must produce
// bit-identical alert state, handler events, and counters.
TEST_F(DaemonTest, HistoryAlertsFireAndClearDeterministicallyUnderPollFaults) {
  struct Outcome {
    std::vector<HistoryAlertState> after_fire;
    std::vector<HistoryAlertState> after_clear;
    std::vector<std::string> events;
    int64_t alerts_raised = 0;
    int64_t poll_errors = 0;
  };

  auto run = [](Outcome* out) {
    SimulatedClock clock(1000000000);
    DatabaseOptions mo;
    mo.name = "monitored";
    mo.clock = &clock;
    Database monitored(mo);
    ASSERT_TRUE(ima::RegisterImaTables(&monitored).ok());
    DatabaseOptions wo;
    wo.name = "workload";
    wo.monitor.enabled = false;
    wo.clock = &clock;
    Database workload(wo);
    StorageDaemon daemon(&monitored, &workload, DaemonConfig{}, &clock);
    ASSERT_TRUE(daemon.Initialize().ok());
    ASSERT_TRUE(RegisterAlertsTable(&monitored, &daemon).ok());

    HistoryAlertRule rule;
    rule.name = "pressure_high";
    rule.series = "test.pressure";
    rule.kind = HistoryAlertRule::Kind::kThreshold;
    rule.cmp = HistoryAlertRule::Cmp::kAbove;
    rule.limit = 100;
    rule.window_seconds = 60;
    rule.sustain_polls = 2;
    rule.message = "pressure above 100";
    daemon.AddHistoryAlertRule(rule);
    daemon.SetAlertHandler([out](const engine::AlertEvent& e) {
      out->events.push_back(e.trigger_name + "|" + e.table + "|" + e.message);
    });

    // Kill exactly the 3rd poll — right in the middle of the breach
    // streak — so one evaluation is simply lost.
    testing::FaultConfig fault;
    fault.fail_poll_at = 3;
    testing::FaultInjector injector(fault);
    injector.Arm();
    daemon.set_poll_fault_hook([&] { return injector.BeforePoll(); });

    metrics::Gauge* pressure = monitored.metrics()->GetGauge("test.pressure");

    pressure->Set(50);
    ASSERT_TRUE(daemon.PollOnce().ok());  // clean: no breach
    clock.AdvanceSeconds(10);

    pressure->Set(500);
    ASSERT_TRUE(daemon.PollOnce().ok());  // breach 1 of 2: not firing yet
    EXPECT_FALSE(daemon.SnapshotAlerts()[0].firing);
    clock.AdvanceSeconds(10);

    EXPECT_FALSE(daemon.PollOnce().ok());  // faulted: evaluation skipped
    EXPECT_FALSE(daemon.SnapshotAlerts()[0].firing);
    clock.AdvanceSeconds(10);

    ASSERT_TRUE(daemon.PollOnce().ok());  // breach 2 of 2: fires
    out->after_fire = daemon.SnapshotAlerts();
    clock.AdvanceSeconds(10);

    ASSERT_TRUE(daemon.PollOnce().ok());  // still breaching: one event only
    clock.AdvanceSeconds(10);

    pressure->Set(50);
    ASSERT_TRUE(daemon.PollOnce().ok());  // clean sample: clears
    out->after_clear = daemon.SnapshotAlerts();

    // The firing state is queryable while hot, via the IMA table.
    QueryResult r = [&] {
      auto res = monitored.Execute(
          "SELECT rule, state, fire_count, value, threshold "
          "FROM imp_alerts");
      EXPECT_TRUE(res.ok()) << res.status();
      return res.ok() ? res.TakeValue() : QueryResult{};
    }();
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].AsText(), "pressure_high");
    EXPECT_EQ(r.rows[0][1].AsText(), "clear");  // cleared by now
    EXPECT_EQ(r.rows[0][2].AsInt(), 1);
    EXPECT_EQ(r.rows[0][3].AsInt(), 50);
    EXPECT_EQ(r.rows[0][4].AsInt(), 100);

    out->alerts_raised = daemon.stats().alerts_raised;
    out->poll_errors = daemon.stats().poll_errors;
  };

  Outcome a, b;
  run(&a);
  run(&b);

  ASSERT_EQ(a.after_fire.size(), 1u);
  EXPECT_TRUE(a.after_fire[0].firing);
  EXPECT_EQ(a.after_fire[0].fire_count, 1);
  EXPECT_EQ(a.after_fire[0].breach_polls, 2);
  EXPECT_EQ(a.after_fire[0].value, 500);
  ASSERT_EQ(a.after_clear.size(), 1u);
  EXPECT_FALSE(a.after_clear[0].firing);
  EXPECT_EQ(a.after_clear[0].fire_count, 1);
  EXPECT_EQ(a.after_clear[0].breach_polls, 0);
  EXPECT_EQ(a.after_clear[0].value, 50);
  ASSERT_EQ(a.events.size(), 1u);
  EXPECT_EQ(a.events[0],
            "pressure_high|imp_metrics_history|pressure above 100");
  EXPECT_EQ(a.alerts_raised, 1);
  EXPECT_EQ(a.poll_errors, 1);

  // Determinism: the delayed run replays to identical state.
  auto same = [](const HistoryAlertState& x, const HistoryAlertState& y) {
    return x.rule == y.rule && x.firing == y.firing && x.value == y.value &&
           x.breach_polls == y.breach_polls && x.fire_count == y.fire_count &&
           x.first_fired_micros == y.first_fired_micros &&
           x.last_fired_micros == y.last_fired_micros &&
           x.last_eval_micros == y.last_eval_micros;
  };
  EXPECT_TRUE(same(a.after_fire[0], b.after_fire[0]));
  EXPECT_TRUE(same(a.after_clear[0], b.after_clear[0]));
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.alerts_raised, b.alerts_raised);
  EXPECT_EQ(a.poll_errors, b.poll_errors);
}

#endif  // IMON_METRICS_DISABLED

TEST_F(DaemonTest, BackgroundThreadPollsAndStops) {
  // The background thread uses real waiting; keep the interval tiny.
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());
  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");
  daemon.Start();
  EXPECT_TRUE(daemon.running());
  // Wait for at least one flush.
  for (int i = 0; i < 200 && daemon.stats().flushes == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  daemon.Stop();
  EXPECT_FALSE(daemon.running());
  EXPECT_GE(daemon.stats().polls, 1);
  EXPECT_GE(CountRows("wl_workload"), 1);
}

}  // namespace
}  // namespace imon::daemon
