#include "daemon/daemon.h"

#include <gtest/gtest.h>

#include "ima/ima.h"

namespace imon::daemon {
namespace {

using engine::Database;
using engine::DatabaseOptions;
using engine::QueryResult;

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest()
      : clock_(1000000000),
        monitored_(MonitoredOptions()),
        workload_db_(WorkloadOptions()) {
    EXPECT_TRUE(ima::RegisterImaTables(&monitored_).ok());
  }

  DatabaseOptions MonitoredOptions() {
    DatabaseOptions o;
    o.name = "monitored";
    o.clock = &clock_;
    return o;
  }
  DatabaseOptions WorkloadOptions() {
    DatabaseOptions o;
    o.name = "workload";
    o.monitor.enabled = false;  // the workload DB itself is not monitored
    o.clock = &clock_;
    return o;
  }

  DaemonConfig FastConfig() {
    DaemonConfig c;
    c.poll_interval = std::chrono::milliseconds(5);
    c.polls_per_flush = 2;
    c.retention = std::chrono::seconds(3600);
    c.flushes_per_purge = 1;
    return c;
  }

  QueryResult MustExec(Database* db, const std::string& sql) {
    auto r = db->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? r.TakeValue() : QueryResult{};
  }

  int64_t CountRows(const std::string& table) {
    QueryResult r = MustExec(&workload_db_, "SELECT count(*) FROM " + table);
    return r.rows[0][0].AsInt();
  }

  SimulatedClock clock_;
  Database monitored_;
  Database workload_db_;
};

TEST_F(DaemonTest, SchemaCreationIsIdempotent) {
  ASSERT_TRUE(CreateWorkloadSchema(&workload_db_).ok());
  ASSERT_TRUE(CreateWorkloadSchema(&workload_db_).ok());
  EXPECT_TRUE(workload_db_.catalog()->HasTable("wl_workload"));
  EXPECT_TRUE(workload_db_.catalog()->HasTable("wl_statistics"));
}

TEST_F(DaemonTest, PollAndFlushPersistWorkload) {
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "INSERT INTO t VALUES (1)");
  MustExec(&monitored_, "SELECT v FROM t WHERE v = 1");

  ASSERT_TRUE(daemon.PollOnce().ok());  // buffers, no flush yet
  EXPECT_EQ(CountRows("wl_workload"), 0);
  ASSERT_TRUE(daemon.PollOnce().ok());  // second poll triggers flush
  EXPECT_GE(CountRows("wl_workload"), 3);
  EXPECT_GE(CountRows("wl_statements"), 3);
  EXPECT_GE(CountRows("wl_statistics"), 2);  // one sample per poll
  EXPECT_GE(CountRows("wl_tables"), 1);

  auto stats = daemon.stats();
  EXPECT_EQ(stats.polls, 2);
  EXPECT_EQ(stats.flushes, 1);
  EXPECT_GT(stats.rows_written, 0);
  EXPECT_GT(stats.bytes_written_estimate, 0);
}

TEST_F(DaemonTest, IncrementalReadsDoNotDuplicate) {
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  int64_t after_first = CountRows("wl_workload");

  // No new statements: two more polls add no workload rows.
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  EXPECT_EQ(CountRows("wl_workload"), after_first);

  MustExec(&monitored_, "SELECT v FROM t WHERE v = 9");
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  EXPECT_EQ(CountRows("wl_workload"), after_first + 1);
}

TEST_F(DaemonTest, DaemonPollingIsNotSelfObserved) {
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());
  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(daemon.PollOnce().ok());
  // The daemon's own IMA SELECTs must not appear in the statement history.
  for (const auto& s : monitored_.monitor()->SnapshotStatements()) {
    EXPECT_EQ(s.text.find("imp_"), std::string::npos) << s.text;
  }
}

TEST_F(DaemonTest, RetentionPurgesOldRows) {
  DaemonConfig config = FastConfig();
  config.retention = std::chrono::seconds(100);
  StorageDaemon daemon(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  int64_t persisted = CountRows("wl_workload");
  ASSERT_GE(persisted, 1);

  // Advance past retention; next flush purges everything old.
  clock_.AdvanceSeconds(200);
  ASSERT_TRUE(daemon.PurgeExpired().ok());
  EXPECT_EQ(CountRows("wl_workload"), 0);
  EXPECT_EQ(CountRows("wl_statistics"), 0);
  EXPECT_GT(daemon.stats().rows_purged, 0);
}

TEST_F(DaemonTest, AlertRulesFireOnThreshold) {
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());
  ASSERT_TRUE(daemon
                  .AddAlertRule("deadlock_alert", "wl_statistics",
                                "deadlocks >= 1",
                                "deadlocks observed on the system")
                  .ok());
  std::vector<engine::AlertEvent> alerts;
  daemon.SetAlertHandler(
      [&](const engine::AlertEvent& e) { alerts.push_back(e); });

  // Produce a deadlock on the monitored engine.
  MustExec(&monitored_, "CREATE TABLE x (v INT)");
  MustExec(&monitored_, "CREATE TABLE y (v INT)");
  MustExec(&monitored_, "INSERT INTO x VALUES (1)");
  MustExec(&monitored_, "INSERT INTO y VALUES (1)");
  auto s1 = monitored_.CreateSession();
  auto s2 = monitored_.CreateSession();
  ASSERT_TRUE(monitored_.Execute("BEGIN", s1.get()).ok());
  ASSERT_TRUE(monitored_.Execute("BEGIN", s2.get()).ok());
  ASSERT_TRUE(monitored_.Execute("UPDATE x SET v = 2", s1.get()).ok());
  ASSERT_TRUE(monitored_.Execute("UPDATE y SET v = 2", s2.get()).ok());
  std::thread t([&] {
    monitored_.Execute("UPDATE y SET v = 3", s1.get()).ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  monitored_.Execute("UPDATE x SET v = 3", s2.get()).ok();
  t.join();
  monitored_.Execute("COMMIT", s1.get()).ok();
  monitored_.Execute("COMMIT", s2.get()).ok();

  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].trigger_name, "deadlock_alert");
  EXPECT_GE(daemon.stats().alerts_raised, 1);
}

TEST_F(DaemonTest, BackgroundThreadPollsAndStops) {
  // The background thread uses real waiting; keep the interval tiny.
  StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());
  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");
  daemon.Start();
  EXPECT_TRUE(daemon.running());
  // Wait for at least one flush.
  for (int i = 0; i < 200 && daemon.stats().flushes == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  daemon.Stop();
  EXPECT_FALSE(daemon.running());
  EXPECT_GE(daemon.stats().polls, 1);
  EXPECT_GE(CountRows("wl_workload"), 1);
}

}  // namespace
}  // namespace imon::daemon
