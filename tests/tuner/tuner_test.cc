// Closed-loop tuner: guarded apply, verification windows, rollback.
//
// End-to-end scenarios, all deterministic under SimulatedClock:
//  * a skewed workload leads to an R4 index recommendation, the tuner
//    revalidates + applies it, post-apply costs improve, and the action
//    is KEPT — visible in imp_tuning_actions and wl_tuning_actions;
//  * an injected post-apply regression makes verification execute the
//    inverse DDL (automatic DROP INDEX rollback);
//  * a crash injected mid-apply (before or after the DDL) leaves the
//    catalog consistent after the next orchestrator tick / a fresh
//    orchestrator's audit-trail recovery;
//  * a seeded fuzz loop hammers the apply path with probabilistic
//    faults and simulated crashes, checking terminal-state/catalog
//    consistency every iteration.
//
// Custom main(): `tuner_test --seed=N --iters=K`. tier-1 reruns this
// binary under -DIMON_SANITIZE=thread (scripts/tier1.sh).

#include "tuner/tuner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analyzer/analyzer.h"
#include "daemon/daemon.h"
#include "engine/database.h"
#include "ima/ima.h"
#include "testing/fault_injector.h"

namespace imon::tuner {
namespace {

uint64_t g_seed = 42;
int g_iters = 10;

using analyzer::Recommendation;
using analyzer::RecommendationKind;
using engine::Database;
using engine::DatabaseOptions;
using engine::QueryResult;

class TunerTest : public ::testing::Test {
 protected:
  TunerTest()
      : clock_(1000000000),
        monitored_(MonitoredOptions()),
        workload_db_(WorkloadOptions()) {
    EXPECT_TRUE(ima::RegisterImaTables(&monitored_).ok());
  }

  DatabaseOptions MonitoredOptions() {
    DatabaseOptions o;
    o.name = "monitored";
    o.clock = &clock_;
    return o;
  }
  DatabaseOptions WorkloadOptions() {
    DatabaseOptions o;
    o.name = "workload";
    o.monitor.enabled = false;
    o.clock = &clock_;
    return o;
  }

  /// Short windows and no cooldown so scenarios run in a few ticks.
  TunerConfig FastConfig() {
    TunerConfig c;
    c.verification_window = std::chrono::seconds(60);
    c.table_cooldown = std::chrono::seconds(0);
    c.min_revalidated_benefit = 1.0;
    return c;
  }

  QueryResult MustExec(Database* db, const std::string& sql) {
    auto r = db->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? r.TakeValue() : QueryResult{};
  }

  /// Skewed single-table workload: enough rows that a heap scan is
  /// expensive, repeated point SELECTs on the unindexed column.
  void BuildSkewedWorkload(const std::string& table, int rows,
                           int selects) {
    MustExec(&monitored_,
             "CREATE TABLE " + table + " (a INT, b INT, c INT)");
    for (int i = 0; i < rows; ++i) {
      MustExec(&monitored_, "INSERT INTO " + table + " VALUES (" +
                                std::to_string(i) + ", " +
                                std::to_string(i % 500) + ", " +
                                std::to_string(i % 7) + ")");
    }
    MustExec(&monitored_, "ANALYZE " + table);
    for (int i = 0; i < selects; ++i) {
      MustExec(&monitored_,
               "SELECT a FROM " + table + " WHERE b = 123");
    }
  }

  Recommendation IndexRec(const std::string& table,
                          const std::string& column) {
    Recommendation rec;
    rec.kind = RecommendationKind::kCreateIndex;
    rec.table = table;
    rec.columns = {column};
    rec.index_name = "idx_" + table + "_" + column;
    rec.sql = "CREATE INDEX " + rec.index_name + " ON " + table + " (" +
              column + ")";
    rec.inverse_sql = "DROP INDEX " + rec.index_name;
    rec.estimated_benefit = 100;
    rec.reason = "test";
    return rec;
  }

  /// State of action `id` as reported by the imp_tuning_actions virtual
  /// table (not the in-memory snapshot), so tests exercise the SQL path.
  std::string ImaState(int64_t id) {
    QueryResult r = MustExec(
        &monitored_, "SELECT action_id, state FROM imp_tuning_actions");
    for (const Row& row : r.rows) {
      if (row[0].AsInt() == id) return row[1].AsText();
    }
    return "<missing>";
  }

  bool IndexExists(const std::string& name) {
    return monitored_.catalog()->GetIndex(name).ok();
  }

  SimulatedClock clock_;
  Database monitored_;
  Database workload_db_;
};

TEST_F(TunerTest, SkewedWorkloadIndexAppliedAndKeptEndToEnd) {
  BuildSkewedWorkload("t", 2000, 5);

  // The real analyzer (live IMA mode) must recommend the index.
  analyzer::Analyzer an(&monitored_, nullptr);
  auto report = an.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  std::vector<Recommendation> index_recs;
  for (const Recommendation& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kCreateIndex) index_recs.push_back(rec);
  }
  ASSERT_FALSE(index_recs.empty()) << report->ToString();

  TuningOrchestrator orch(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(orch.Initialize().ok());
  ASSERT_TRUE(RegisterTuningActionsTable(&monitored_, &orch).ok());
  ASSERT_TRUE(orch.Submit(index_recs).ok());

  // Tick 1: revalidate (what-if rerun against fresh statistics) + apply.
  ASSERT_TRUE(orch.Tick().ok());
  ASSERT_TRUE(IndexExists(index_recs[0].index_name));
  EXPECT_EQ(ImaState(1), "VERIFYING");
  EXPECT_EQ(orch.stats().applied, 1);

  // The workload re-runs cheaper through the new index.
  for (int i = 0; i < 5; ++i) {
    MustExec(&monitored_, "SELECT a FROM t WHERE b = 123");
  }
  clock_.AdvanceSeconds(61);
  ASSERT_TRUE(orch.Tick().ok());

  EXPECT_EQ(ImaState(1), "KEPT");
  EXPECT_TRUE(IndexExists(index_recs[0].index_name));
  auto actions = orch.SnapshotActions();
  ASSERT_FALSE(actions.empty());
  EXPECT_GT(actions[0].baseline_cost, 0);
  EXPECT_GT(actions[0].observed_execs, 0);
  EXPECT_LT(actions[0].observed_cost, actions[0].baseline_cost)
      << "index did not make the tracked statements cheaper";

  // Audit trail persisted the full transition history.
  QueryResult audit = MustExec(
      &workload_db_, "SELECT state FROM wl_tuning_actions");
  std::vector<std::string> states;
  for (const Row& row : audit.rows) states.push_back(row[0].AsText());
  for (const char* expected :
       {"PROPOSED", "REVALIDATED", "APPLYING", "APPLIED", "VERIFYING",
        "KEPT"}) {
    EXPECT_NE(std::find(states.begin(), states.end(), expected),
              states.end())
        << "missing audit state " << expected;
  }

  // tuner.* self-observability counters surfaced over imp_metrics.
  QueryResult metrics = MustExec(
      &monitored_, "SELECT name, value FROM imp_metrics");
  int64_t applied_metric = -1;
  for (const Row& row : metrics.rows) {
    if (row[0].AsText() == "tuner.applied") applied_metric = row[1].AsInt();
  }
  EXPECT_EQ(applied_metric, 1);
}

TEST_F(TunerTest, PostApplyRegressionTriggersAutomaticRollback) {
  BuildSkewedWorkload("t", 1000, 5);

  TunerConfig config = FastConfig();
  config.min_revalidated_benefit = 0;
  TuningOrchestrator orch(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(orch.Initialize().ok());
  ASSERT_TRUE(RegisterTuningActionsTable(&monitored_, &orch).ok());
  ASSERT_TRUE(orch.Submit({IndexRec("t", "b")}).ok());

  ASSERT_TRUE(orch.Tick().ok());
  ASSERT_TRUE(IndexExists("idx_t_b"));
  EXPECT_EQ(ImaState(1), "VERIFYING");

  // Inject a regression: the table grows sharply and the post-apply
  // window observes much more expensive statements against it.
  for (int i = 0; i < 2000; ++i) {
    MustExec(&monitored_, "INSERT INTO t VALUES (" + std::to_string(i) +
                              ", 77, 0)");
  }
  for (int i = 0; i < 10; ++i) {
    MustExec(&monitored_, "SELECT a FROM t WHERE c < 100");
  }
  clock_.AdvanceSeconds(61);
  ASSERT_TRUE(orch.Tick().ok());

  EXPECT_EQ(ImaState(1), "ROLLED_BACK");
  EXPECT_FALSE(IndexExists("idx_t_b"))
      << "rollback must execute the inverse DROP INDEX";
  EXPECT_EQ(orch.stats().rolled_back, 1);
  auto action = orch.SnapshotActions()[0];
  EXPECT_GT(action.observed_cost,
            action.baseline_cost * (1.0 + config.regression_tolerance));
}

TEST_F(TunerTest, StaleRecommendationsAreRejectedAndDuplicatesDeduped) {
  BuildSkewedWorkload("t", 300, 3);

  TuningOrchestrator orch(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(orch.Initialize().ok());

  // A recommendation for a table that no longer exists is stale.
  Recommendation gone = IndexRec("vanished", "b");
  // A drop for an index the workload is actively using is stale too.
  MustExec(&monitored_, "CREATE INDEX idx_live ON t (b)");
  MustExec(&monitored_, "SELECT a FROM t WHERE b = 9");
  Recommendation drop_live;
  drop_live.kind = RecommendationKind::kDropIndex;
  drop_live.table = "t";
  drop_live.index_name = "idx_live";
  drop_live.sql = "DROP INDEX idx_live";
  drop_live.inverse_sql = "CREATE INDEX idx_live ON t (b)";

  ASSERT_TRUE(orch.Submit({gone, gone, drop_live}).ok());
  EXPECT_EQ(orch.stats().submitted, 2);
  EXPECT_EQ(orch.stats().deduplicated, 1);

  ASSERT_TRUE(orch.Tick().ok());
  EXPECT_EQ(orch.stats().rejected, 2);
  for (const TuningAction& action : orch.SnapshotActions()) {
    EXPECT_EQ(action.state, ActionState::kRejected) << action.detail;
  }
  EXPECT_TRUE(IndexExists("idx_live"));
}

TEST_F(TunerTest, CrashBeforeDdlFailsActionAndLeavesCatalogClean) {
  BuildSkewedWorkload("t", 300, 3);

  testing::FaultConfig fault;
  fault.seed = g_seed;
  fault.fail_apply_at = 1;  // crash point 1: before the DDL
  testing::FaultInjector injector(fault);
  injector.Arm();

  TunerConfig config = FastConfig();
  config.min_revalidated_benefit = 0;
  TuningOrchestrator orch(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(orch.Initialize().ok());
  orch.set_apply_fault_hook([&] { return injector.BeforeApply(); });

  ASSERT_TRUE(orch.Submit({IndexRec("t", "b")}).ok());
  ASSERT_TRUE(orch.Tick().ok());
  // The "crashed" apply never ran its DDL.
  EXPECT_FALSE(IndexExists("idx_t_b"));
  EXPECT_EQ(orch.SnapshotActions()[0].state, ActionState::kApplying);
  EXPECT_EQ(orch.stats().apply_failures, 1);

  // Next tick reconciles: no effect in the catalog -> FAILED.
  ASSERT_TRUE(orch.Tick().ok());
  EXPECT_EQ(orch.SnapshotActions()[0].state, ActionState::kFailed);
  EXPECT_FALSE(IndexExists("idx_t_b"));
  EXPECT_EQ(orch.stats().reconciled, 1);
  EXPECT_EQ(injector.counters().apply_faults, 1);
}

TEST_F(TunerTest, CrashAfterDdlIsUndoneByFreshOrchestratorRecovery) {
  BuildSkewedWorkload("t", 300, 3);

  testing::FaultConfig fault;
  fault.seed = g_seed;
  fault.fail_apply_at = 2;  // crash point 2: after the DDL
  testing::FaultInjector injector(fault);
  injector.Arm();

  TunerConfig config = FastConfig();
  config.min_revalidated_benefit = 0;
  {
    TuningOrchestrator orch(&monitored_, &workload_db_, config, &clock_);
    ASSERT_TRUE(orch.Initialize().ok());
    orch.set_apply_fault_hook([&] { return injector.BeforeApply(); });
    ASSERT_TRUE(orch.Submit({IndexRec("t", "b")}).ok());
    ASSERT_TRUE(orch.Tick().ok());
    // The DDL completed but the baseline was never captured.
    EXPECT_TRUE(IndexExists("idx_t_b"));
    EXPECT_EQ(orch.SnapshotActions()[0].state, ActionState::kApplying);
  }  // crash: the orchestrator instance is gone

  TuningOrchestrator recovered(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(recovered.Initialize().ok());
  auto actions = recovered.SnapshotActions();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].state, ActionState::kApplying)
      << "recovery must resurrect the interrupted apply from the audit";

  ASSERT_TRUE(recovered.Tick().ok());
  EXPECT_EQ(recovered.SnapshotActions()[0].state, ActionState::kRolledBack);
  EXPECT_FALSE(IndexExists("idx_t_b"))
      << "reconciliation must undo the half-applied index";
  EXPECT_EQ(recovered.stats().reconciled, 1);
}

TEST_F(TunerTest, VerificationWindowSurvivesRestart) {
  BuildSkewedWorkload("t", 500, 4);

  TunerConfig config = FastConfig();
  config.min_revalidated_benefit = 0;
  double baseline = 0;
  {
    TuningOrchestrator orch(&monitored_, &workload_db_, config, &clock_);
    ASSERT_TRUE(orch.Initialize().ok());
    ASSERT_TRUE(orch.Submit({IndexRec("t", "b")}).ok());
    ASSERT_TRUE(orch.Tick().ok());
    ASSERT_EQ(orch.SnapshotActions()[0].state, ActionState::kVerifying);
    baseline = orch.SnapshotActions()[0].baseline_cost;
    ASSERT_GT(baseline, 0);
  }

  TuningOrchestrator recovered(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(recovered.Initialize().ok());
  auto actions = recovered.SnapshotActions();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].state, ActionState::kVerifying);
  EXPECT_EQ(actions[0].baseline_cost, baseline)
      << "the recovered baseline must come from the audit trail";

  for (int i = 0; i < 4; ++i) {
    MustExec(&monitored_, "SELECT a FROM t WHERE b = 123");
  }
  clock_.AdvanceSeconds(61);
  ASSERT_TRUE(recovered.Tick().ok());
  EXPECT_EQ(recovered.SnapshotActions()[0].state, ActionState::kKept);
  EXPECT_TRUE(IndexExists("idx_t_b"));
}

TEST_F(TunerTest, CooldownSpacesApplsOnSameTable) {
  BuildSkewedWorkload("t", 300, 3);
  MustExec(&monitored_, "SELECT a FROM t WHERE c = 3");

  TunerConfig config = FastConfig();
  config.min_revalidated_benefit = 0;
  config.table_cooldown = std::chrono::seconds(1000);
  TuningOrchestrator orch(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(orch.Initialize().ok());
  ASSERT_TRUE(
      orch.Submit({IndexRec("t", "b"), IndexRec("t", "c")}).ok());

  ASSERT_TRUE(orch.Tick().ok());  // applies the first only (single-flight)
  EXPECT_EQ(orch.stats().applied, 1);
  EXPECT_TRUE(IndexExists("idx_t_b"));
  EXPECT_FALSE(IndexExists("idx_t_c"));

  clock_.AdvanceSeconds(61);  // past the window, inside the cooldown
  ASSERT_TRUE(orch.Tick().ok());
  EXPECT_EQ(orch.SnapshotActions()[0].state, ActionState::kKept);
  EXPECT_FALSE(IndexExists("idx_t_c"));
  EXPECT_GT(orch.stats().cooldown_skips, 0);

  clock_.AdvanceSeconds(1000);  // cooldown over
  ASSERT_TRUE(orch.Tick().ok());
  EXPECT_TRUE(IndexExists("idx_t_c"));
  EXPECT_EQ(orch.stats().applied, 2);
}

TEST_F(TunerTest, DaemonFlushDrivesTheLoop) {
  ASSERT_TRUE(daemon::CreateWorkloadSchema(&workload_db_).ok());
  daemon::DaemonConfig dc;
  dc.polls_per_flush = 1;
  dc.flushes_per_purge = 1000;
  daemon::StorageDaemon storage_daemon(&monitored_, &workload_db_, dc,
                                       &clock_);
  ASSERT_TRUE(storage_daemon.Initialize().ok());

  TunerConfig config = FastConfig();
  config.min_revalidated_benefit = 0;
  TuningOrchestrator orch(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(orch.Initialize().ok());
  storage_daemon.set_flush_listener([&] { (void)orch.Tick(); });

  BuildSkewedWorkload("t", 200, 3);
  ASSERT_TRUE(orch.Submit({IndexRec("t", "b")}).ok());

  ASSERT_TRUE(storage_daemon.PollOnce().ok());  // flush -> tick -> apply
  EXPECT_GE(orch.stats().ticks, 1);
  EXPECT_TRUE(IndexExists("idx_t_b"));
  clock_.AdvanceSeconds(61);
  ASSERT_TRUE(storage_daemon.PollOnce().ok());  // flush -> tick -> verdict
  EXPECT_EQ(orch.SnapshotActions()[0].state, ActionState::kKept);
}

TEST_F(TunerTest, ConcurrentTicksAndImaReadsAreSafe) {
  BuildSkewedWorkload("t", 200, 3);

  TunerConfig config = FastConfig();
  config.min_revalidated_benefit = 0;
  config.verification_window = std::chrono::seconds(0);
  TuningOrchestrator orch(&monitored_, &workload_db_, config, &clock_);
  ASSERT_TRUE(orch.Initialize().ok());
  ASSERT_TRUE(RegisterTuningActionsTable(&monitored_, &orch).ok());
  ASSERT_TRUE(orch.Submit({IndexRec("t", "b"), IndexRec("t", "c")}).ok());

  std::thread ticker([&] {
    for (int i = 0; i < 30; ++i) (void)orch.Tick();
  });
  std::thread submitter([&] {
    for (int i = 0; i < 10; ++i) {
      (void)orch.Submit({IndexRec("t", "b")});
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      auto session = monitored_.CreateSession();
      for (int i = 0; i < 40; ++i) {
        (void)monitored_.Execute("SELECT action_id FROM imp_tuning_actions",
                                 session.get());
        (void)monitored_.Execute("SELECT name FROM imp_metrics",
                                 session.get());
      }
    });
  }
  ticker.join();
  submitter.join();
  for (auto& t : readers) t.join();

  // With a zero-length window every structural action must settle.
  for (int i = 0; i < 5; ++i) (void)orch.Tick();
  for (const TuningAction& action : orch.SnapshotActions()) {
    EXPECT_TRUE(ActionStateIsTerminal(action.state))
        << ActionStateName(action.state) << ": " << action.detail;
  }
}

TEST_F(TunerTest, ProvenanceJoinRoundTrip) {
  BuildSkewedWorkload("t", 2000, 5);

  // Real analyzer output, so decision_id / rule / evidence are the ones
  // Analyze() stamped — not hand-crafted values.
  analyzer::Analyzer an(&monitored_, nullptr);
  auto report = an.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  std::vector<Recommendation> index_recs;
  for (const Recommendation& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kCreateIndex) index_recs.push_back(rec);
  }
  ASSERT_FALSE(index_recs.empty()) << report->ToString();
  ASSERT_NE(index_recs[0].decision_id, 0);
  ASSERT_EQ(index_recs[0].rule, "R4");
  ASSERT_FALSE(index_recs[0].evidence.empty());

  {
    TuningOrchestrator orch(&monitored_, &workload_db_, FastConfig(),
                            &clock_);
    ASSERT_TRUE(orch.Initialize().ok());
    ASSERT_TRUE(RegisterTuningActionsTable(&monitored_, &orch).ok());
    ASSERT_TRUE(RegisterTuningProvenanceTable(&monitored_, &orch).ok());
    ASSERT_TRUE(orch.Submit(index_recs).ok());

    // The action carries the decision id; every evidence template became
    // one provenance row tied to it.
    auto actions = orch.SnapshotActions();
    ASSERT_FALSE(actions.empty());
    EXPECT_EQ(actions[0].decision_id, index_recs[0].decision_id);
    EXPECT_EQ(actions[0].rule, "R4");
    auto provenance = orch.SnapshotProvenance();
    ASSERT_EQ(provenance.size(), index_recs[0].evidence.size());
    EXPECT_EQ(provenance[0].decision_id, index_recs[0].decision_id);
    EXPECT_EQ(provenance[0].action_id, actions[0].id);
    EXPECT_EQ(provenance[0].fingerprint, index_recs[0].evidence[0].fingerprint);
    EXPECT_EQ(provenance[0].executions, index_recs[0].evidence[0].executions);

    // SQL sees the same rows: imp_tuning_provenance joins
    // imp_tuning_actions on both decision_id and action_id.
    QueryResult joined = MustExec(
        &monitored_,
        "SELECT p.decision_id, a.decision_id, p.rule, a.rule "
        "FROM imp_tuning_provenance p "
        "JOIN imp_tuning_actions a ON p.action_id = a.action_id");
    ASSERT_EQ(joined.rows.size(), provenance.size());
    for (const Row& row : joined.rows) {
      EXPECT_EQ(row[0].AsInt(), row[1].AsInt());
      EXPECT_EQ(row[2].AsText(), row[3].AsText());
    }
  }

  // A fresh orchestrator over the same workload DB recovers both the
  // actions (with decision_id / rule from the audit columns) and the
  // evidence rows from wl_tuning_provenance.
  TuningOrchestrator recovered(&monitored_, &workload_db_, FastConfig(),
                               &clock_);
  ASSERT_TRUE(recovered.Initialize().ok());
  auto actions = recovered.SnapshotActions();
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].decision_id, index_recs[0].decision_id);
  EXPECT_EQ(actions[0].rule, "R4");
  auto provenance = recovered.SnapshotProvenance();
  ASSERT_EQ(provenance.size(), index_recs[0].evidence.size());
  EXPECT_EQ(provenance[0].decision_id, index_recs[0].decision_id);
  EXPECT_EQ(provenance[0].fingerprint, index_recs[0].evidence[0].fingerprint);
}

// Pins the documented acceptance query: one SQL join over
// imp_tuning_provenance ⋈ imp_tuning_actions ⋈ imp_templates answers
// "why does index I exist and what happened to cost afterwards"
// (examples/provenance_explorer.cpp runs the same statement).
TEST_F(TunerTest, ProvenanceExplainsKeptIndexOverSql) {
  BuildSkewedWorkload("t", 2000, 5);

  analyzer::Analyzer an(&monitored_, nullptr);
  auto report = an.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  std::vector<Recommendation> index_recs;
  for (const Recommendation& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kCreateIndex) index_recs.push_back(rec);
  }
  ASSERT_FALSE(index_recs.empty()) << report->ToString();

  TuningOrchestrator orch(&monitored_, &workload_db_, FastConfig(), &clock_);
  ASSERT_TRUE(orch.Initialize().ok());
  ASSERT_TRUE(RegisterTuningActionsTable(&monitored_, &orch).ok());
  ASSERT_TRUE(RegisterTuningProvenanceTable(&monitored_, &orch).ok());
  ASSERT_TRUE(orch.Submit(index_recs).ok());

  ASSERT_TRUE(orch.Tick().ok());  // revalidate + apply
  for (int i = 0; i < 5; ++i) {
    MustExec(&monitored_, "SELECT a FROM t WHERE b = 123");
  }
  clock_.AdvanceSeconds(61);
  ASSERT_TRUE(orch.Tick().ok());  // verdict
  ASSERT_EQ(ImaState(1), "KEPT");

  QueryResult r = MustExec(
      &monitored_,
      "SELECT a.index_name, a.state, p.rule, t.template_text, "
      "p.executions, a.baseline_cost, a.observed_cost "
      "FROM imp_tuning_provenance p "
      "JOIN imp_tuning_actions a ON p.action_id = a.action_id "
      "JOIN imp_templates t ON p.fingerprint = t.fingerprint");
  ASSERT_FALSE(r.rows.empty())
      << "the provenance join must explain the kept index";
  bool explained = false;
  for (const Row& row : r.rows) {
    if (row[0].AsText() != index_recs[0].index_name) continue;
    explained = true;
    EXPECT_EQ(row[1].AsText(), "KEPT");
    EXPECT_EQ(row[2].AsText(), "R4");
    EXPECT_NE(row[3].AsText().find("select"), std::string::npos)
        << row[3].AsText();
    EXPECT_GT(row[4].AsInt(), 0);
    EXPECT_GT(row[5].AsDouble(), 0);   // baseline cost before the index
    EXPECT_LT(row[6].AsDouble(), row[5].AsDouble())
        << "cost afterwards should have improved";
  }
  EXPECT_TRUE(explained) << "no joined row for " << index_recs[0].index_name;
}

// Seeded fuzz: probabilistic apply faults + simulated crashes, every
// iteration checked for terminal-state/catalog consistency.
TEST_F(TunerTest, ApplyFaultFuzzKeepsCatalogConsistent) {
  testing::FaultConfig fault;
  fault.seed = g_seed;
  fault.apply_fault_prob = 0.4;
  testing::FaultInjector injector(fault);
  injector.Arm();

  TunerConfig config = FastConfig();
  config.min_revalidated_benefit = 0;
  config.verification_window = std::chrono::seconds(1);

  for (int iter = 0; iter < g_iters; ++iter) {
    std::string table = "t" + std::to_string(iter);
    MustExec(&monitored_, "CREATE TABLE " + table + " (a INT, b INT)");
    for (int i = 0; i < 50; ++i) {
      MustExec(&monitored_, "INSERT INTO " + table + " VALUES (" +
                                std::to_string(i) + ", " +
                                std::to_string(i % 5) + ")");
    }
    MustExec(&monitored_, "SELECT a FROM " + table + " WHERE b = 3");

    // Each iteration gets a fresh orchestrator (a simulated crash +
    // restart): it must recover every prior action from the audit.
    TuningOrchestrator orch(&monitored_, &workload_db_, config, &clock_);
    ASSERT_TRUE(orch.Initialize().ok());
    orch.set_apply_fault_hook([&] { return injector.BeforeApply(); });
    ASSERT_TRUE(orch.Submit({IndexRec(table, "b")}).ok());

    for (int tick = 0; tick < 8; ++tick) {
      ASSERT_TRUE(orch.Tick().ok());
      clock_.AdvanceSeconds(2);
      bool all_terminal = true;
      for (const TuningAction& action : orch.SnapshotActions()) {
        all_terminal = all_terminal && ActionStateIsTerminal(action.state);
      }
      if (all_terminal) break;
    }

    // Drain with faults off: everything must reach a terminal state.
    injector.Disarm();
    for (int tick = 0; tick < 4; ++tick) {
      ASSERT_TRUE(orch.Tick().ok());
      clock_.AdvanceSeconds(2);
    }
    injector.Arm();

    for (const TuningAction& action : orch.SnapshotActions()) {
      ASSERT_TRUE(ActionStateIsTerminal(action.state))
          << "iter " << iter << ": " << ActionStateName(action.state)
          << " (" << action.detail << ")";
      if (action.kind != RecommendationKind::kCreateIndex) continue;
      bool exists = IndexExists(action.index_name);
      if (action.state == ActionState::kKept) {
        EXPECT_TRUE(exists) << "iter " << iter << ": kept " +
                                   action.index_name + " missing";
      } else {
        EXPECT_FALSE(exists)
            << "iter " << iter << ": " << ActionStateName(action.state)
            << " left " << action.index_name << " behind";
      }
    }
    // The engine still answers correctly regardless of tuner outcome.
    QueryResult r = MustExec(&monitored_,
                             "SELECT count(*) FROM " + table);
    EXPECT_EQ(r.rows[0][0].AsInt(), 50) << "iter " << iter;
  }
}

}  // namespace
}  // namespace imon::tuner

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      imon::tuner::g_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--iters=", 0) == 0) {
      imon::tuner::g_iters = std::atoi(arg.c_str() + 8);
    }
  }
  return RUN_ALL_TESTS();
}
