#include "workload/contention.h"
#include "workload/nref.h"

#include <gtest/gtest.h>

namespace imon::workload {
namespace {

using engine::Database;
using engine::DatabaseOptions;

NrefConfig TinyConfig() {
  NrefConfig c;
  c.proteins = 500;
  c.taxa = 40;
  c.main_pages = 4;
  return c;
}

TEST(NrefTest, SchemaCreatesSixTables) {
  Database db{DatabaseOptions{}};
  ASSERT_TRUE(CreateNrefSchema(&db, TinyConfig()).ok());
  for (const char* t : {"protein", "organism", "source", "taxonomy",
                        "feature", "cross_ref"}) {
    EXPECT_TRUE(db.catalog()->HasTable(t)) << t;
  }
  // Only primary keys: exactly 2 indexes (protein_pkey, taxonomy_pkey).
  EXPECT_EQ(db.catalog()->ListIndexes().size(), 2u);
}

TEST(NrefTest, LoadIsDeterministicAndComplete) {
  NrefConfig config = TinyConfig();
  Database a{DatabaseOptions{}};
  Database b{DatabaseOptions{}};
  ASSERT_TRUE(SetupNref(&a, config).ok());
  ASSERT_TRUE(SetupNref(&b, config).ok());
  // Bulk loading runs on an internal session: DDL is monitored (normal
  // statements), but none of the INSERT traffic may appear.
  for (const auto& s : a.monitor()->SnapshotStatements()) {
    EXPECT_EQ(s.text.find("INSERT"), std::string::npos) << s.text;
  }

  auto count = [](Database* db, const std::string& table) {
    auto r = db->Execute("SELECT count(*) FROM " + table);
    EXPECT_TRUE(r.ok());
    return r->rows[0][0].AsInt();
  };
  EXPECT_EQ(count(&a, "protein"), config.proteins);
  EXPECT_EQ(count(&a, "taxonomy"), config.taxa);
  EXPECT_EQ(count(&a, "feature"), config.proteins * 3);
  EXPECT_EQ(count(&a, "source"), config.proteins * 2);
  EXPECT_GE(count(&a, "organism"), config.proteins);
  EXPECT_GE(count(&a, "cross_ref"), config.proteins);
  // Determinism across databases.
  for (const char* t : {"protein", "organism", "source", "taxonomy",
                        "feature", "cross_ref"}) {
    EXPECT_EQ(count(&a, t), count(&b, t)) << t;
  }
}

TEST(NrefTest, LoadedHeapsAccrueOverflowPages) {
  Database db{DatabaseOptions{}};
  ASSERT_TRUE(SetupNref(&db, TinyConfig()).ok());
  auto protein = db.catalog()->GetTable("protein");
  ASSERT_TRUE(protein.ok());
  EXPECT_EQ(protein->structure, catalog::StorageStructure::kHeap);
  EXPECT_GT(protein->overflow_pages, 0);
}

TEST(NrefTest, ComplexQuerySetRunsGreen) {
  NrefConfig config = TinyConfig();
  Database db{DatabaseOptions{}};
  ASSERT_TRUE(SetupNref(&db, config).ok());
  auto queries = ComplexQuerySet(config, 50);
  ASSERT_EQ(queries.size(), 50u);
  // Deterministic generation.
  EXPECT_EQ(queries, ComplexQuerySet(config, 50));
  int nonempty = 0;
  for (const std::string& q : queries) {
    auto r = db.Execute(q);
    ASSERT_TRUE(r.ok()) << q << " -> " << r.status();
    if (!r->rows.empty()) ++nonempty;
  }
  // The workload is not vacuous: most queries return data.
  EXPECT_GT(nonempty, 25);
}

TEST(NrefTest, SimpleAndPointQueriesWork) {
  NrefConfig config = TinyConfig();
  Database db{DatabaseOptions{}};
  ASSERT_TRUE(SetupNref(&db, config).ok());
  auto join = db.Execute(SimpleJoinQuery(42));
  ASSERT_TRUE(join.ok());
  EXPECT_GE(join->rows.size(), 1u);
  auto point = db.Execute(PointQuery(42));
  ASSERT_TRUE(point.ok());
  ASSERT_EQ(point->rows.size(), 1u);
  EXPECT_EQ(point->rows[0][0].AsInt(), 42);
}

TEST(NrefTest, PointQueryUsesPrimaryKeyIndex) {
  NrefConfig config = TinyConfig();
  config.proteins = 3000;
  Database db{DatabaseOptions{}};
  ASSERT_TRUE(SetupNref(&db, config).ok());
  auto r = db.Execute("EXPLAIN " + PointQuery(7));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->stats.plan_text.find("protein_pkey"), std::string::npos)
      << r->stats.plan_text;
}

TEST(NrefTest, ManualOptimizationScriptApplies) {
  NrefConfig config = TinyConfig();
  Database db{DatabaseOptions{}};
  ASSERT_TRUE(SetupNref(&db, config).ok());
  EXPECT_EQ(ReferenceIndexSet().size(), 33u);
  for (const std::string& sql : ManualOptimizationScript()) {
    auto r = db.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }
  // 33 reference + 2 pkey indexes; all tables now BTREE.
  EXPECT_EQ(db.catalog()->ListIndexes().size(), 35u);
  for (const char* t : {"protein", "organism", "source", "taxonomy",
                        "feature", "cross_ref"}) {
    auto info = db.catalog()->GetTable(t);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->structure, catalog::StorageStructure::kBtree) << t;
  }
  // Queries still return the same data afterwards.
  auto point = db.Execute(PointQuery(5));
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->rows.size(), 1u);
}

TEST(ContentionTest, ProducesWaitsAndDeadlocks) {
  Database db{DatabaseOptions{}};
  ContentionConfig config;
  config.threads = 4;
  config.transactions_per_thread = 40;
  config.tables = 2;  // two tables + opposite orders = frequent conflicts
  ASSERT_TRUE(SetupContentionTables(&db, config).ok());
  auto result = RunContentionWorkload(&db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->committed, 0);
  auto stats = db.lock_manager()->stats();
  EXPECT_GT(stats.total_waits, 0);
  // Sum of outcomes matches attempts.
  EXPECT_EQ(result->committed + result->deadlock_aborts +
                result->busy_aborts + result->other_errors,
            4 * 40);
  // Statistics samples were taken during the run.
  EXPECT_GE(db.monitor()->SnapshotStatistics().size(), 10u);
}

}  // namespace
}  // namespace imon::workload
