// Stage-trace capture + Chrome trace-event export tests. The trace seq
// domain is separate from the workload/references domain, so these
// tests assert density of trace seqs without disturbing the seq
// accounting the concurrency tests rely on.

#include "monitor/trace_export.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "monitor/monitor.h"

namespace imon::monitor {
namespace {

MonitorConfig TraceConfig(size_t shards = 2) {
  MonitorConfig config;
  config.shards = shards;
  config.stats_sample_every = 0;
  return config;
}

/// One full sensor cycle; every stage runs, so a commit publishes
/// kNumStages spans.
void CommitOne(Monitor* m, int64_t session_id, int64_t i) {
  QueryTrace trace;
  m->OnQueryStart(&trace, session_id);
  m->OnParseComplete(&trace, "SELECT v FROM t WHERE v = " +
                                 std::to_string(i % 16));
  m->OnBindComplete(&trace, {1}, {{1, 0}}, {});
  m->OnOptimizeComplete(&trace, 1.0, 2.0, {7}, 500, 0);
  m->OnExecuteComplete(&trace, 1000, 0, 3.0, 1, 1);
  m->Commit(&trace);
}

TEST(MonitorTraceTest, EveryCommitPublishesOneSpanPerStage) {
#ifdef IMON_METRICS_DISABLED
  GTEST_SKIP() << "metrics layer compiled out";
#endif
  constexpr int64_t kCommits = 10;
  Monitor m(TraceConfig(), RealClock::Instance());
  for (int64_t i = 0; i < kCommits; ++i) CommitOne(&m, /*session_id=*/1, i);

  std::vector<TraceRecord> traces = m.SnapshotTraces();
  ASSERT_EQ(traces.size(), static_cast<size_t>(kCommits * kNumStages));

  // Trace seqs are dense [1, commits * stages] and the merged view is
  // strictly ascending.
  std::set<int64_t> seqs;
  std::array<int64_t, kNumStages> per_stage{};
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(traces[i - 1].seq, traces[i].seq);
    }
    EXPECT_TRUE(seqs.insert(traces[i].seq).second);
    EXPECT_GE(traces[i].duration_nanos, 0);
    EXPECT_GT(traces[i].start_micros, 0);
    EXPECT_EQ(traces[i].session_id, 1);
    EXPECT_NE(traces[i].hash, 0u);
    per_stage[static_cast<size_t>(traces[i].stage)] += 1;
  }
  EXPECT_EQ(*seqs.begin(), 1);
  EXPECT_EQ(*seqs.rbegin(), kCommits * kNumStages);
  for (int64_t count : per_stage) EXPECT_EQ(count, kCommits);
}

TEST(MonitorTraceTest, SnapshotTracesSinceFiltersBySeq) {
#ifdef IMON_METRICS_DISABLED
  GTEST_SKIP() << "metrics layer compiled out";
#endif
  Monitor m(TraceConfig(), RealClock::Instance());
  for (int64_t i = 0; i < 6; ++i) CommitOne(&m, /*session_id=*/1, i);

  std::vector<TraceRecord> all = m.SnapshotTraces();
  ASSERT_FALSE(all.empty());
  int64_t mid = all[all.size() / 2].seq;
  std::vector<TraceRecord> tail = m.SnapshotTracesSince(mid);
  ASSERT_EQ(tail.size(), all.size() - all.size() / 2 - 1);
  for (const TraceRecord& tr : tail) EXPECT_GT(tr.seq, mid);
  EXPECT_TRUE(m.SnapshotTracesSince(all.back().seq).empty());
}

TEST(MonitorTraceTest, ZeroTraceWindowDisablesCapture) {
  MonitorConfig config = TraceConfig();
  config.trace_window = 0;
  Monitor m(config, RealClock::Instance());
  for (int64_t i = 0; i < 4; ++i) CommitOne(&m, /*session_id=*/1, i);
  EXPECT_TRUE(m.SnapshotTraces().empty());
  // The workload path is untouched by the trace switch.
  EXPECT_EQ(m.SnapshotWorkload().size(), 4u);
}

TEST(MonitorTraceTest, ChromeTraceJsonShape) {
  std::vector<TraceRecord> traces(2);
  traces[0] = {1, 0xabcu, 3, Stage::kParse, 1000, 2500};
  traces[1] = {2, 0xabcu, 3, Stage::kExecute, 1010, 4000};

  std::string json = ChromeTraceJson(traces);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // Empty input still yields a loadable document.
  std::string empty = ChromeTraceJson({});
  EXPECT_NE(empty.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(MonitorTraceTest, LifecycleSpansGetTheirOwnTrack) {
  std::vector<TraceRecord> traces(1);
  traces[0] = {1, 0xabcu, 3, Stage::kParse, 1000, 2500};

  LifecycleSpan span;
  span.name = "CREATE INDEX idx_t_b [KEPT]";
  span.category = "tuner";
  span.track_name = "tuner";
  span.track = 7;
  span.start_micros = 5000;
  span.end_micros = 9000;
  span.int_args = {{"decision_id", 42}, {"action_id", 7}};
  span.text_args = {{"rule", "R4"}, {"note", "a \"quoted\"\nnote"}};

  std::string json = ChromeTraceJson(traces, {span});
  // Statement spans keep pid 0; lifecycle spans live on pid 1 with a
  // process_name metadata event naming the track.
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"tuner\""), std::string::npos);
  EXPECT_NE(json.find("\"decision_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"R4\""), std::string::npos);
  // Text args are JSON-escaped, never raw.
  EXPECT_NE(json.find("a \\\"quoted\\\"\\nnote"), std::string::npos);
  EXPECT_EQ(json.find("\nnote"), std::string::npos);

  // No spans -> byte-identical to the two-arg overload (no stray
  // metadata events).
  EXPECT_EQ(ChromeTraceJson(traces, {}), ChromeTraceJson(traces));
}

TEST(MonitorTraceTest, ExportChromeTraceWritesFile) {
  Monitor m(TraceConfig(), RealClock::Instance());
  for (int64_t i = 0; i < 3; ++i) CommitOne(&m, /*session_id=*/1, i);

  const std::string path =
      ::testing::TempDir() + "/imon_trace_export_test.json";
  ASSERT_TRUE(ExportChromeTrace(m, path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string contents = buffer.str();
  EXPECT_NE(contents.find("\"traceEvents\":["), std::string::npos);
#ifndef IMON_METRICS_DISABLED
  EXPECT_NE(contents.find("\"name\":\"parse\""), std::string::npos);
#endif
  std::remove(path.c_str());
}

TEST(MonitorTraceTest, ExportChromeTraceRejectsUnwritablePath) {
  Monitor m(TraceConfig(), RealClock::Instance());
  EXPECT_FALSE(ExportChromeTrace(m, "/nonexistent-dir/trace.json").ok());
}

TEST(MonitorTraceTest, ClearDropsBufferedTraces) {
#ifdef IMON_METRICS_DISABLED
  GTEST_SKIP() << "metrics layer compiled out";
#endif
  Monitor m(TraceConfig(), RealClock::Instance());
  for (int64_t i = 0; i < 3; ++i) CommitOne(&m, /*session_id=*/1, i);
  ASSERT_FALSE(m.SnapshotTraces().empty());
  m.Clear();
  EXPECT_TRUE(m.SnapshotTraces().empty());
}

}  // namespace
}  // namespace imon::monitor
