#include "monitor/monitor.h"

#include <gtest/gtest.h>

#include <thread>

namespace imon::monitor {
namespace {

MonitorConfig SmallConfig() {
  MonitorConfig c;
  c.statement_window = 4;
  c.workload_window = 8;
  c.references_window = 16;
  c.statistics_window = 8;
  c.stats_sample_every = 0;
  return c;
}

QueryTrace RunStatement(Monitor* m, const std::string& text,
                        double est = 1.0, double actual = 2.0) {
  QueryTrace trace;
  m->OnQueryStart(&trace);
  m->OnParseComplete(&trace, text);
  m->OnBindComplete(&trace, {1}, {{1, 0}}, {7});
  m->OnOptimizeComplete(&trace, est, est, {7}, 100, 0);
  m->OnExecuteComplete(&trace, 1000, 2, actual, 10, 3);
  m->Commit(&trace);
  return trace;
}

TEST(MonitorTest, DisabledSensorsLeaveNoTrace) {
  MonitorConfig config = SmallConfig();
  config.enabled = false;
  Monitor m(config, RealClock::Instance());
  QueryTrace trace = RunStatement(&m, "SELECT 1");
  EXPECT_FALSE(trace.active);
  EXPECT_EQ(trace.monitor_nanos, 0);
  EXPECT_TRUE(m.SnapshotStatements().empty());
  EXPECT_TRUE(m.SnapshotWorkload().empty());
  EXPECT_EQ(m.statements_executed(), 0);
}

TEST(MonitorTest, StatementFrequencyAccumulates) {
  Monitor m(SmallConfig(), RealClock::Instance());
  RunStatement(&m, "SELECT a");
  RunStatement(&m, "SELECT a");
  RunStatement(&m, "SELECT b");
  auto statements = m.SnapshotStatements();
  ASSERT_EQ(statements.size(), 2u);
  int64_t freq_a = 0;
  for (const auto& s : statements) {
    if (s.text == "SELECT a") freq_a = s.frequency;
  }
  EXPECT_EQ(freq_a, 2);
  EXPECT_EQ(m.statements_executed(), 3);
}

TEST(MonitorTest, StatementWindowEvictsOldest) {
  Monitor m(SmallConfig(), RealClock::Instance());  // window = 4
  for (int i = 0; i < 6; ++i) {
    RunStatement(&m, "stmt " + std::to_string(i));
  }
  auto statements = m.SnapshotStatements();
  ASSERT_EQ(statements.size(), 4u);
  // Oldest two evicted.
  for (const auto& s : statements) {
    EXPECT_NE(s.text, "stmt 0");
    EXPECT_NE(s.text, "stmt 1");
  }
}

TEST(MonitorTest, WorkloadRecordCarriesCosts) {
  Monitor m(SmallConfig(), RealClock::Instance());
  RunStatement(&m, "SELECT x", /*est=*/5.0, /*actual=*/9.0);
  auto workload = m.SnapshotWorkload();
  ASSERT_EQ(workload.size(), 1u);
  const WorkloadRecord& r = workload[0];
  EXPECT_EQ(r.hash, HashStatement("SELECT x"));
  EXPECT_DOUBLE_EQ(r.estimated_cpu + r.estimated_io, 10.0);
  EXPECT_DOUBLE_EQ(r.actual_cost, 9.0);
  EXPECT_EQ(r.rows_examined, 10);
  EXPECT_EQ(r.rows_output, 3);
  EXPECT_EQ(r.execute_disk_io, 2);
  EXPECT_GT(r.wallclock_nanos, 0);
  EXPECT_GT(r.monitor_nanos, 0);
  EXPECT_EQ(r.used_indexes, std::vector<ObjectId>{7});
}

TEST(MonitorTest, WorkloadRingWrapsAndCountsDrops) {
  Monitor m(SmallConfig(), RealClock::Instance());  // workload window 8
  for (int i = 0; i < 12; ++i) {
    RunStatement(&m, "q" + std::to_string(i));
  }
  auto workload = m.SnapshotWorkload();
  EXPECT_EQ(workload.size(), 8u);
  EXPECT_EQ(m.counters().statements_dropped, 4);
  // Records are in arrival order with ascending seq.
  for (size_t i = 1; i < workload.size(); ++i) {
    EXPECT_GT(workload[i].seq, workload[i - 1].seq);
  }
}

TEST(MonitorTest, ReferencesRecorded) {
  Monitor m(SmallConfig(), RealClock::Instance());
  RunStatement(&m, "SELECT a");
  auto refs = m.SnapshotReferences();
  // 1 table + 1 attribute + 1 available index + 1 used index.
  ASSERT_EQ(refs.size(), 4u);
  EXPECT_EQ(refs[0].type, RefType::kTable);
  EXPECT_EQ(refs[1].type, RefType::kAttribute);
  EXPECT_EQ(refs[1].ordinal, 0);
  EXPECT_EQ(refs[2].type, RefType::kIndex);
  EXPECT_EQ(refs[3].type, RefType::kUsedIndex);
  EXPECT_EQ(m.TableFrequencies()[1], 1);
  EXPECT_EQ((m.AttributeFrequencies()[{1, 0}]), 1);
  EXPECT_EQ(m.IndexFrequencies()[7], 1);
}

TEST(MonitorTest, IncrementalSnapshotsReturnOnlyNewTail) {
  Monitor m(SmallConfig(), RealClock::Instance());
  RunStatement(&m, "q1");
  RunStatement(&m, "q2");
  int64_t last_seq = m.SnapshotWorkload().back().seq;
  EXPECT_TRUE(m.SnapshotWorkloadSince(last_seq).empty());
  RunStatement(&m, "q3");
  auto fresh = m.SnapshotWorkloadSince(last_seq);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].hash, HashStatement("q3"));
  // Agreement with the full snapshot.
  auto full = m.SnapshotWorkload();
  EXPECT_EQ(full.back().seq, fresh[0].seq);
}

TEST(MonitorTest, SystemStatsSampling) {
  Monitor m(SmallConfig(), RealClock::Instance());
  SystemSnapshot snapshot;
  snapshot.current_sessions = 3;
  snapshot.cache_logical_reads = 100;
  snapshot.cache_physical_reads = 25;
  m.RecordSystemStats(snapshot);
  auto stats = m.SnapshotStatistics();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].current_sessions, 3);
  EXPECT_DOUBLE_EQ(stats[0].cache_hit_ratio, 0.75);
}

TEST(MonitorTest, ShouldSampleStatsEveryN) {
  MonitorConfig config = SmallConfig();
  config.stats_sample_every = 3;
  Monitor m(config, RealClock::Instance());
  int samples = 0;
  for (int i = 0; i < 9; ++i) {
    RunStatement(&m, "q" + std::to_string(i % 2));
    if (m.ShouldSampleStats()) ++samples;
  }
  EXPECT_EQ(samples, 3);
}

TEST(MonitorTest, SelfTimeAccounted) {
  Monitor m(SmallConfig(), RealClock::Instance());
  QueryTrace trace = RunStatement(&m, "SELECT 1");
  EXPECT_GT(trace.monitor_nanos, 0);
  EXPECT_EQ(m.counters().total_monitor_nanos > 0, true);
  auto workload = m.SnapshotWorkload();
  EXPECT_EQ(workload[0].monitor_nanos, trace.monitor_nanos);
}

TEST(MonitorTest, MaxSessionsTracksHighWater) {
  Monitor m(SmallConfig(), RealClock::Instance());
  m.NoteSessionCount(2);
  m.NoteSessionCount(7);
  m.NoteSessionCount(4);
  EXPECT_EQ(m.max_sessions_seen(), 7);
}

TEST(MonitorTest, ClearResetsEverything) {
  Monitor m(SmallConfig(), RealClock::Instance());
  RunStatement(&m, "q");
  m.RecordSystemStats(SystemSnapshot{});
  m.Clear();
  EXPECT_TRUE(m.SnapshotStatements().empty());
  EXPECT_TRUE(m.SnapshotWorkload().empty());
  EXPECT_TRUE(m.SnapshotReferences().empty());
  EXPECT_TRUE(m.SnapshotStatistics().empty());
  EXPECT_TRUE(m.TableFrequencies().empty());
}

TEST(MonitorTest, ConcurrentCommitsAreSafe) {
  MonitorConfig config;
  config.stats_sample_every = 0;
  Monitor m(config, RealClock::Instance());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RunStatement(&m, "thread " + std::to_string(t) + " stmt " +
                             std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.statements_executed(), kThreads * kPerThread);
  auto statements = m.SnapshotStatements();
  EXPECT_EQ(statements.size(), config.statement_window);
}

TEST(MonitorTest, TemplatesAggregateAcrossLiterals) {
  Monitor m(SmallConfig(), RealClock::Instance());
  RunStatement(&m, "SELECT a FROM t WHERE id = 1", 1.0, 2.0);
  RunStatement(&m, "SELECT a FROM t WHERE id = 2", 1.0, 4.0);
  RunStatement(&m, "SELECT a FROM t WHERE id = 3", 1.0, 6.0);
  RunStatement(&m, "SELECT b FROM t", 1.0, 1.0);
  auto templates = m.SnapshotTemplates();
  ASSERT_EQ(templates.size(), 2u);
  const TemplateRecord* point = nullptr;
  for (const auto& t : templates) {
    if (t.template_text == "select a from t where id = ?") point = &t;
  }
  ASSERT_NE(point, nullptr);
  EXPECT_EQ(point->executions, 3);
  EXPECT_EQ(point->sampled_count, 3);
  EXPECT_DOUBLE_EQ(point->total_actual, 12.0);
  EXPECT_DOUBLE_EQ(point->total_estimated, 6.0);
  EXPECT_EQ(point->actual_cost_milli.count, 3);
  // Representative = earliest execution (ties broken by raw hash).
  EXPECT_EQ(point->sample_text, "SELECT a FROM t WHERE id = 1");
  EXPECT_EQ(point->ref_tables, std::vector<ObjectId>{1});
  EXPECT_GT(point->seq, 0);
}

TEST(MonitorTest, TemplateWindowEvictsOldest) {
  MonitorConfig config = SmallConfig();
  config.template_window = 2;
  Monitor m(config, RealClock::Instance());
  RunStatement(&m, "SELECT a FROM t1");
  RunStatement(&m, "SELECT a FROM t2");
  RunStatement(&m, "SELECT a FROM t3");
  auto templates = m.SnapshotTemplates();
  ASSERT_EQ(templates.size(), 2u);
  for (const auto& t : templates) {
    EXPECT_NE(t.template_text, "select a from t1");
  }
}

TEST(MonitorTest, SamplingKeepsTemplateCountsExact) {
  MonitorConfig config = SmallConfig();
  config.workload_window = 256;
  Monitor m(config, RealClock::Instance());
  m.SetWorkloadSampleRate(250'000);  // keep ~25% of raw records
  for (int i = 0; i < 100; ++i) {
    RunStatement(&m, "SELECT a FROM t WHERE id = " + std::to_string(i));
  }
  auto templates = m.SnapshotTemplates();
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_EQ(templates[0].executions, 100);
  EXPECT_LT(templates[0].sampled_count, 100);
  EXPECT_EQ(static_cast<int64_t>(m.SnapshotWorkload().size()),
            templates[0].sampled_count);
  // Drop accounting reconciles exactly with the template's view.
  int64_t sampled_out = 0;
  for (const auto& s : m.ShardStatsSnapshot()) {
    sampled_out += s.workload_sampled_out;
  }
  EXPECT_EQ(sampled_out, 100 - templates[0].sampled_count);
  // Raw seq domain stays dense: sampled-out commits allocate no seqs, so
  // the max seq equals kept commits x (1 workload + 4 reference) seqs.
  auto workload = m.SnapshotWorkload();
  auto refs = m.SnapshotReferences();
  int64_t max_seq = 0;
  for (const auto& r : workload) max_seq = std::max(max_seq, r.seq);
  for (const auto& r : refs) max_seq = std::max(max_seq, r.seq);
  EXPECT_EQ(max_seq, templates[0].sampled_count * 5);
}

TEST(MonitorTest, SamplingIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    MonitorConfig config = SmallConfig();
    config.workload_window = 256;
    config.sample_seed = seed;
    Monitor m(config, RealClock::Instance());
    m.SetWorkloadSampleRate(500'000);
    std::vector<uint64_t> kept;
    for (int i = 0; i < 64; ++i) {
      RunStatement(&m, "SELECT a FROM t WHERE id = " + std::to_string(i));
    }
    for (const auto& r : m.SnapshotWorkload()) kept.push_back(r.hash);
    return kept;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(RingBufferTest, BasicPushAndWrap) {
  RingBuffer<int> ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  ring.Push(1);
  ring.Push(2);
  EXPECT_FALSE(ring.full());
  ring.Push(3);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.Snapshot(), (std::vector<int>{1, 2, 3}));
  ring.Push(4);
  EXPECT_EQ(ring.Snapshot(), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(ring.overwritten(), 1);
}

TEST(RingBufferTest, ZeroCapacityClampsToOne) {
  RingBuffer<int> ring(0);
  ring.Push(1);
  ring.Push(2);
  EXPECT_EQ(ring.Snapshot(), std::vector<int>{2});
}

TEST(RingBufferTest, SnapshotTailStopsAtFirstOldEntry) {
  RingBuffer<int> ring(5);
  for (int i = 1; i <= 7; ++i) ring.Push(i);  // holds 3..7
  auto tail = ring.SnapshotTail([](int v) { return v > 5; });
  EXPECT_EQ(tail, (std::vector<int>{6, 7}));
  auto all = ring.SnapshotTail([](int) { return true; });
  EXPECT_EQ(all, (std::vector<int>{3, 4, 5, 6, 7}));
  auto none = ring.SnapshotTail([](int) { return false; });
  EXPECT_TRUE(none.empty());
}

TEST(RingBufferTest, ClearEmptiesBuffer) {
  RingBuffer<int> ring(2);
  ring.Push(1);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  ring.Push(9);
  EXPECT_EQ(ring.Snapshot(), std::vector<int>{9});
}

}  // namespace
}  // namespace imon::monitor
