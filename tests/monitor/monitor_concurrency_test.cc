// Concurrency stress + sharding-equivalence tests for the sharded
// monitor (DESIGN.md "Concurrency model").
//
// - Stress: N committer threads on distinct sessions publish in
//   parallel; the merged relational view must account for every
//   allocated sequence number exactly once.
// - Reader: incremental Since-polls racing the committers must always
//   advance (a poll never returns a seq at or below its cursor, and the
//   merged batches are strictly ascending).
// - Regression: for a single-threaded workload, a sharded monitor must
//   produce record sequences identical to a 1-shard (pre-sharding)
//   monitor, both in full snapshots and through chunked daemon-style
//   Since-polling, at the monitor API and through a whole Database.

#include "monitor/monitor.h"

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "engine/database.h"
#include "gtest/gtest.h"

namespace imon::monitor {
namespace {

MonitorConfig BigWindows(size_t shards) {
  MonitorConfig config;
  config.shards = shards;
  config.statement_window = 100000;
  config.workload_window = 100000;
  config.references_window = 400000;
  config.stats_sample_every = 0;
  return config;
}

/// One full sensor cycle: 1 table ref + 1 attribute ref + 1 used index
/// -> a block of 4 seqs (workload record + 3 references).
void CommitOne(Monitor* m, int64_t session_id, int64_t i) {
  QueryTrace trace;
  m->OnQueryStart(&trace, session_id);
  m->OnParseComplete(&trace, "SELECT v FROM t WHERE v = " +
                                 std::to_string(i % 128));
  m->OnBindComplete(&trace, {1}, {{1, 0}}, {});
  m->OnOptimizeComplete(&trace, 1.0, 2.0, {7}, 500, 0);
  m->OnExecuteComplete(&trace, 1000, 0, 3.0, 1, 1);
  m->Commit(&trace);
}
constexpr int64_t kSeqsPerCommit = 4;

TEST(MonitorConcurrencyTest, NoLostOrDuplicatedSeqsUnderContention) {
  constexpr int kThreads = 8;
  constexpr int64_t kCommits = 2000;
  Monitor m(BigWindows(8), RealClock::Instance());
  ASSERT_EQ(m.shard_count(), 8u);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&m, t] {
      for (int64_t i = 0; i < kCommits; ++i) CommitOne(&m, t + 1, i);
    });
  }
  for (auto& w : workers) w.join();

  constexpr int64_t kTotal = kThreads * kCommits;
  EXPECT_EQ(m.statements_executed(), kTotal);
  EXPECT_EQ(m.counters().statements_dropped, 0);

  // Every seq in [1, kTotal * kSeqsPerCommit] appears exactly once across
  // workload + reference records, and the merged views are ascending.
  std::vector<WorkloadRecord> workload = m.SnapshotWorkload();
  std::vector<ReferenceRecord> references = m.SnapshotReferences();
  ASSERT_EQ(workload.size(), static_cast<size_t>(kTotal));
  ASSERT_EQ(references.size(),
            static_cast<size_t>(kTotal * (kSeqsPerCommit - 1)));

  std::set<int64_t> seen;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(workload[i - 1].seq, workload[i].seq);
    }
    EXPECT_TRUE(seen.insert(workload[i].seq).second)
        << "duplicate seq " << workload[i].seq;
  }
  for (size_t i = 0; i < references.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(references[i - 1].seq, references[i].seq);
    }
    EXPECT_TRUE(seen.insert(references[i].seq).second)
        << "duplicate seq " << references[i].seq;
  }
  ASSERT_EQ(seen.size(), static_cast<size_t>(kTotal * kSeqsPerCommit));
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), kTotal * kSeqsPerCommit);

  // Frequencies merged across shards.
  EXPECT_EQ(m.TableFrequencies().at(1), kTotal);
  EXPECT_EQ(m.AttributeFrequencies().at({1, 0}), kTotal);
  EXPECT_EQ(m.IndexFrequencies().at(7), kTotal);
}

TEST(MonitorConcurrencyTest, ShardStatsAccountForCommitsAndDrops) {
  // Tiny windows force ring wrap-around; the per-shard saturation
  // counters (imp_monitor rows) must account for exactly what the
  // merged snapshots lost.
  MonitorConfig config = BigWindows(4);
  config.workload_window = 8;
  config.references_window = 8;
  config.trace_window = 8;

  constexpr int kThreads = 4;
  constexpr int64_t kCommits = 500;
  Monitor m(config, RealClock::Instance());

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&m, t] {
      for (int64_t i = 0; i < kCommits; ++i) CommitOne(&m, t + 1, i);
    });
  }
  for (auto& w : workers) w.join();

  constexpr int64_t kTotal = kThreads * kCommits;
  std::vector<ShardStats> stats = m.ShardStatsSnapshot();
  ASSERT_EQ(stats.size(), m.shard_count());

  int64_t committed = 0;
  int64_t workload_dropped = 0;
  int64_t references_dropped = 0;
  for (const ShardStats& s : stats) {
    EXPECT_GE(s.shard, 0);
    EXPECT_GE(s.monitor_nanos, 0);
    committed += s.statements_committed;
    workload_dropped += s.workload_dropped;
    references_dropped += s.references_dropped;
  }
  EXPECT_EQ(committed, kTotal);
  // Every commit the retained windows cannot hold is accounted as a
  // drop — no record vanishes without being counted.
  EXPECT_GT(workload_dropped, 0);
  EXPECT_EQ(workload_dropped,
            kTotal - static_cast<int64_t>(m.SnapshotWorkload().size()));
  EXPECT_EQ(references_dropped,
            kTotal * (kSeqsPerCommit - 1) -
                static_cast<int64_t>(m.SnapshotReferences().size()));
  // The aggregate view agrees with the per-shard accounting.
  EXPECT_EQ(m.counters().statements_dropped, workload_dropped);

#ifndef IMON_METRICS_DISABLED
  // Stage tracing saturates its own ring the same way (5 spans per
  // commit into a window of 8).
  int64_t traces_dropped = 0;
  for (const ShardStats& s : stats) traces_dropped += s.traces_dropped;
  EXPECT_GT(traces_dropped, 0);
#endif

  // Clear() empties the windows but never resets the saturation
  // accounting ("since construction", like statements_executed).
  m.Clear();
  std::vector<ShardStats> cleared = m.ShardStatsSnapshot();
  int64_t dropped_after_clear = 0;
  for (const ShardStats& s : cleared) dropped_after_clear += s.workload_dropped;
  EXPECT_EQ(dropped_after_clear, workload_dropped);
}

TEST(MonitorConcurrencyTest, SincePollingNeverGoesBackwardOrLosesRecords) {
  constexpr int kThreads = 4;
  constexpr int64_t kCommits = 1500;
  Monitor m(BigWindows(4), RealClock::Instance());

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&m, t] {
      for (int64_t i = 0; i < kCommits; ++i) CommitOne(&m, t + 1, i);
    });
  }

  // Daemon-style reader racing the committers.
  int64_t cursor = 0;
  size_t polled = 0;
  while (polled < static_cast<size_t>(kThreads * kCommits)) {
    std::vector<WorkloadRecord> batch = m.SnapshotWorkloadSince(cursor);
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_GT(batch[i].seq, cursor);
      cursor = batch[i].seq;
    }
    polled += batch.size();
  }
  for (auto& w : workers) w.join();

  // Nothing was double-counted: the cursor walked exactly the committed
  // workload records.
  EXPECT_EQ(polled, static_cast<size_t>(kThreads * kCommits));
  EXPECT_TRUE(m.SnapshotWorkloadSince(cursor).empty());
}

/// The comparable identity of a record sequence (timings differ run to
/// run; order and identity must not).
std::vector<std::pair<int64_t, uint64_t>> Ids(
    const std::vector<WorkloadRecord>& records) {
  std::vector<std::pair<int64_t, uint64_t>> out;
  for (const auto& r : records) out.emplace_back(r.seq, r.hash);
  return out;
}

std::vector<std::tuple<int64_t, uint64_t, int, int64_t>> Ids(
    const std::vector<ReferenceRecord>& records) {
  std::vector<std::tuple<int64_t, uint64_t, int, int64_t>> out;
  for (const auto& r : records) {
    out.emplace_back(r.seq, r.hash, static_cast<int>(r.type), r.object_id);
  }
  return out;
}

TEST(MonitorConcurrencyTest, SingleThreadedSequenceIdenticalAcrossShardCounts) {
  Monitor flat(BigWindows(1), RealClock::Instance());
  Monitor wide(BigWindows(8), RealClock::Instance());
  ASSERT_EQ(flat.shard_count(), 1u);
  ASSERT_EQ(wide.shard_count(), 8u);

  // Identical single-session workload into both, with chunked
  // daemon-style polling interleaved mid-stream.
  int64_t flat_cursor = 0;
  int64_t wide_cursor = 0;
  for (int chunk = 0; chunk < 10; ++chunk) {
    for (int64_t i = 0; i < 37; ++i) {
      CommitOne(&flat, 0, chunk * 37 + i);
      CommitOne(&wide, 0, chunk * 37 + i);
    }
    std::vector<WorkloadRecord> flat_batch =
        flat.SnapshotWorkloadSince(flat_cursor);
    std::vector<WorkloadRecord> wide_batch =
        wide.SnapshotWorkloadSince(wide_cursor);
    ASSERT_EQ(Ids(flat_batch), Ids(wide_batch)) << "chunk " << chunk;
    ASSERT_FALSE(flat_batch.empty());
    flat_cursor = flat_batch.back().seq;
    wide_cursor = wide_batch.back().seq;

    ASSERT_EQ(Ids(flat.SnapshotReferencesSince(0)),
              Ids(wide.SnapshotReferencesSince(0)))
        << "chunk " << chunk;
  }

  EXPECT_EQ(Ids(flat.SnapshotWorkload()), Ids(wide.SnapshotWorkload()));
  EXPECT_EQ(Ids(flat.SnapshotReferences()), Ids(wide.SnapshotReferences()));
  EXPECT_EQ(flat.TableFrequencies(), wide.TableFrequencies());
  EXPECT_EQ(flat.AttributeFrequencies(), wide.AttributeFrequencies());
  EXPECT_EQ(flat.IndexFrequencies(), wide.IndexFrequencies());

  auto flat_statements = flat.SnapshotStatements();
  auto wide_statements = wide.SnapshotStatements();
  ASSERT_EQ(flat_statements.size(), wide_statements.size());
  for (size_t i = 0; i < flat_statements.size(); ++i) {
    EXPECT_EQ(flat_statements[i].hash, wide_statements[i].hash);
    EXPECT_EQ(flat_statements[i].frequency, wide_statements[i].frequency);
  }
}

TEST(MonitorConcurrencyTest, DatabaseSequenceIdenticalAcrossShardCounts) {
  auto run = [](size_t shards) {
    engine::DatabaseOptions options;
    options.monitor.shards = shards;
    options.monitor.stats_sample_every = 0;
    engine::Database db(options);
    auto exec = [&db](const std::string& sql) {
      ASSERT_TRUE(db.Execute(sql).ok()) << sql;
    };
    exec("CREATE TABLE t (v INT, w INT)");
    for (int i = 0; i < 20; ++i) {
      exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 0)");
    }
    exec("CREATE INDEX t_v ON t (v)");
    for (int i = 0; i < 20; ++i) {
      exec("SELECT w FROM t WHERE v = " + std::to_string(i % 7));
    }
    exec("UPDATE t SET w = 1 WHERE v = 3");
    // The engine is single-threaded here, so the monitor's relational
    // view must be byte-for-byte ordered like the 1-shard build.
    std::vector<std::pair<int64_t, uint64_t>> out;
    for (const auto& r : db.monitor()->SnapshotWorkload()) {
      out.emplace_back(r.seq, r.hash);
    }
    for (const auto& r : db.monitor()->SnapshotReferences()) {
      out.emplace_back(r.seq, static_cast<uint64_t>(r.object_id));
    }
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

}  // namespace
}  // namespace imon::monitor
