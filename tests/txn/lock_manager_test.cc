#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace imon::txn {
namespace {

using std::chrono::milliseconds;

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(3, 100, LockMode::kShared).ok());
  EXPECT_EQ(lm.stats().locks_held, 3);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  lm.ReleaseAll(3);
  EXPECT_EQ(lm.stats().locks_held, 0);
}

TEST(LockManagerTest, ExclusiveBlocksOthers) {
  LockManager lm(milliseconds(50));
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
  // Second requester times out.
  Status s = lm.Acquire(2, 100, LockMode::kShared);
  EXPECT_TRUE(s.IsBusy());
  EXPECT_GE(lm.stats().total_waits, 1);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Acquire(2, 100, LockMode::kShared).ok());
}

TEST(LockManagerTest, ReentrantAcquire) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());  // upgrade
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());  // already X
  EXPECT_EQ(lm.stats().locks_held, 1);
}

TEST(LockManagerTest, DifferentObjectsIndependent) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, 200, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.stats().locks_held, 2);
}

TEST(LockManagerTest, WaiterWakesOnRelease) {
  LockManager lm(milliseconds(5000));
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Status s = lm.Acquire(2, 100, LockMode::kExclusive);
    granted = s.ok();
  });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(granted.load());
  EXPECT_EQ(lm.stats().waiting_requests, 1);
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, DeadlockDetectedAndVictimAborted) {
  LockManager lm(milliseconds(5000));
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, 200, LockMode::kExclusive).ok());

  std::atomic<bool> t1_aborted{false};
  std::atomic<bool> t1_done{false};
  std::thread t1([&] {
    Status s = lm.Acquire(1, 200, LockMode::kExclusive);  // waits on txn 2
    t1_aborted = s.IsAborted();
    t1_done = true;
    if (s.ok()) lm.ReleaseAll(1);
  });
  std::this_thread::sleep_for(milliseconds(100));
  // txn 2 now requests txn 1's object: cycle.
  Status s2 = lm.Acquire(2, 100, LockMode::kExclusive);
  bool t2_aborted = s2.IsAborted();
  if (t2_aborted) {
    lm.ReleaseAll(2);  // victim releases; t1 proceeds
  }
  t1.join();
  EXPECT_TRUE(t1_aborted.load() || t2_aborted);
  EXPECT_GE(lm.stats().total_deadlocks, 1);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, UpgradeWaitsForOtherSharers) {
  LockManager lm(milliseconds(100));
  ASSERT_TRUE(lm.Acquire(1, 100, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, 100, LockMode::kShared).ok());
  // txn 1 cannot upgrade while txn 2 shares; times out.
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).IsBusy());
  lm.ReleaseAll(2);
  EXPECT_TRUE(lm.Acquire(1, 100, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, StressManyThreadsNoLostGrants) {
  LockManager lm(milliseconds(5000));
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int64_t> protected_counter{0};
  int64_t unprotected = 0;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        TxnId txn = t * 10000 + i + 1;
        Status s = lm.Acquire(txn, 42, LockMode::kExclusive);
        if (s.ok()) {
          ++unprotected;  // data race unless the lock is truly exclusive
          protected_counter.fetch_add(1);
          lm.ReleaseAll(txn);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(unprotected, protected_counter.load());
  EXPECT_EQ(protected_counter.load(), kThreads * kIters);
  EXPECT_EQ(lm.stats().locks_held, 0);
}

TEST(LockManagerTest, StatsAreCumulative) {
  LockManager lm(milliseconds(20));
  ASSERT_TRUE(lm.Acquire(1, 1, LockMode::kExclusive).ok());
  lm.Acquire(2, 1, LockMode::kExclusive).ok();  // timeout -> one wait
  auto stats = lm.stats();
  EXPECT_GE(stats.total_acquired, 1);
  EXPECT_GE(stats.total_waits, 1);
  EXPECT_EQ(stats.waiting_requests, 0);
}

}  // namespace
}  // namespace imon::txn
