// Shared helpers for engine-level tests. The result-set comparator
// (Fingerprint) lives in src/testing/oracle.h so the differential oracle
// and the hand-written tests use one canonical comparator; this header
// holds the classic hand-authored dataset used by differential and
// analyzer tests.

#ifndef IMON_TESTS_TESTING_UTIL_H_
#define IMON_TESTS_TESTING_UTIL_H_

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "engine/database.h"
#include "testing/oracle.h"

namespace imon::testing {

/// A deterministic small database: two joinable tables with skew, nulls
/// and text columns (item 400 rows, sale 900 rows).
inline void Populate(engine::Database* db, uint64_t seed) {
  ASSERT_TRUE(db->Execute("CREATE TABLE item (id INT PRIMARY KEY, "
                          "grp INT, price DOUBLE, tag TEXT)")
                  .ok());
  ASSERT_TRUE(
      db->Execute("CREATE TABLE sale (item_id INT, qty INT, day INT)").ok());
  std::mt19937_64 rng(seed);
  for (int i = 0; i < 400; ++i) {
    std::string tag = rng() % 7 == 0
                          ? "NULL"
                          : "'tag" + std::to_string(rng() % 10) + "'";
    ASSERT_TRUE(db->Execute("INSERT INTO item VALUES (" + std::to_string(i) +
                            ", " + std::to_string(rng() % 12) + ", " +
                            std::to_string((rng() % 10000)) + ".25, " + tag +
                            ")")
                    .ok());
  }
  for (int i = 0; i < 900; ++i) {
    ASSERT_TRUE(db->Execute("INSERT INTO sale VALUES (" +
                            std::to_string(rng() % 400) + ", " +
                            std::to_string(1 + rng() % 5) + ", " +
                            std::to_string(rng() % 30) + ")")
                    .ok());
  }
}

}  // namespace imon::testing

#endif  // IMON_TESTS_TESTING_UTIL_H_
