// Regression tests for the IMON_LOG macro, in particular the
// dangling-else hazard: a braceless `if (...) IMON_LOG(...) << ...;`
// followed by the caller's own `else` must bind that `else` to the
// caller's `if`, not to the hidden `if` inside the macro.

#include "common/logging.h"

#include <gtest/gtest.h>

namespace imon {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_(GetLogLevel()) {}
  ~LoggingTest() override { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST_F(LoggingTest, MacroDoesNotSwallowTrailingElse) {
  SetLogLevel(LogLevel::kError);  // keep stderr quiet

  // cond == false: the caller's else MUST run. With a naive
  //   #define IMON_LOG(l) if (enabled(l)) LogLine(l)
  // expansion, the else below would bind to the macro's if instead and
  // run exactly when logging is *enabled* — silently inverting control
  // flow. This test fails to behave (not to compile) under that bug.
  bool else_taken = false;
  bool cond = false;
  if (cond)
    IMON_LOG(kError) << "never reached";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);

  // cond == true: the caller's else must NOT run, even though the log
  // statement itself is filtered out by the level threshold.
  else_taken = false;
  cond = true;
  if (cond)
    IMON_LOG(kDebug) << "below threshold, dropped";
  else
    else_taken = true;
  EXPECT_FALSE(else_taken);
}

TEST_F(LoggingTest, FilteredMessagesDoNotEvaluateOperands) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  IMON_LOG(kDebug) << ++evaluations;  // dropped: operand must not run
  IMON_LOG(kWarn) << ++evaluations;   // dropped: operand must not run
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, ThresholdIsAdjustable) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

}  // namespace
}  // namespace imon
