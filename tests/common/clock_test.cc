#include "common/clock.h"

#include <gtest/gtest.h>

namespace imon {
namespace {

TEST(ClockTest, RealClockAdvances) {
  RealClock* clock = RealClock::Instance();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0);
}

TEST(ClockTest, SimulatedClockIsManual) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceMicros(500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.AdvanceSeconds(2);
  EXPECT_EQ(clock.NowMicros(), 1500 + 2000000);
  clock.SetMicros(7);
  EXPECT_EQ(clock.NowMicros(), 7);
}

TEST(ClockTest, MonotonicNanosIsMonotonic) {
  int64_t a = MonotonicNanos();
  int64_t b = MonotonicNanos();
  EXPECT_GE(b, a);
}

TEST(ClockTest, ScopedTimerAccumulates) {
  int64_t sink = 0;
  {
    ScopedTimerNs timer(&sink);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_GT(sink, 0);
  int64_t first = sink;
  {
    ScopedTimerNs timer(&sink);
  }
  EXPECT_GE(sink, first);
}

}  // namespace
}  // namespace imon
