// Unit tests for the sharded metrics registry (common/metrics.h):
// counter monotonicity under concurrent writers, log2-histogram
// bucketing/quantiles, and registry handle stability. The MetricsTest
// suite also runs under ThreadSanitizer in tier-1.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

namespace imon::metrics {
namespace {

#ifndef IMON_METRICS_DISABLED

TEST(MetricsTest, CounterSumsAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int64_t kIncrements = 20000;
  Counter c;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int64_t i = 0; i < kIncrements; ++i) c.Add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kIncrements);
}

TEST(MetricsTest, CounterReadsAreMonotonicUnderWriters) {
  constexpr int kThreads = 3;
  constexpr int64_t kIncrements = 30000;
  Counter c;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int64_t i = 0; i < kIncrements; ++i) c.Add(2);
    });
  }
  // Racing reader: per-cell monotonic adds mean the summed value can lag
  // but can never go backwards.
  int64_t last = 0;
  while (last < kThreads * kIncrements * 2) {
    int64_t v = c.Value();
    EXPECT_GE(v, last);
    last = v;
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kIncrements * 2);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 40);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
}

TEST(MetricsTest, HistogramBucketIsBitWidth) {
  EXPECT_EQ(Histogram::BucketFor(-5), 0);
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  EXPECT_EQ(Histogram::BucketFor(std::numeric_limits<int64_t>::max()),
            Histogram::kBuckets - 1);
}

TEST(MetricsTest, HistogramCountSumMaxAndQuantiles) {
  Histogram h;
  for (int64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 100);
  EXPECT_EQ(h.Sum(), 5050);
  EXPECT_EQ(h.Max(), 100);

  int64_t p50 = h.ValueAtPercentile(50);
  int64_t p95 = h.ValueAtPercentile(95);
  int64_t p99 = h.ValueAtPercentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.Max());
  // Bucket upper bounds never under-report: each quantile is >= the true
  // value and <= the observed maximum.
  EXPECT_GE(p50, 50);
  EXPECT_GE(p95, 95);
  EXPECT_GE(p99, 99);
}

TEST(MetricsTest, RegistryHandlesAreStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("sub.a");
  Counter* a_again = registry.GetCounter("sub.a");
  Counter* b = registry.GetCounter("sub.b");
  EXPECT_EQ(a, a_again);
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.GetGauge("sub.g"), registry.GetGauge("sub.g"));
  EXPECT_EQ(registry.GetHistogram("sub.h"), registry.GetHistogram("sub.h"));
}

TEST(MetricsTest, SnapshotValuesIsNameSortedAndTyped) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Add(3);
  registry.GetCounter("alpha")->Add(1);
  registry.GetGauge("mid")->Set(-4);

  std::vector<MetricValue> values = registry.SnapshotValues();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].name, "alpha");
  EXPECT_STREQ(values[0].kind, "counter");
  EXPECT_EQ(values[0].value, 1);
  EXPECT_EQ(values[1].name, "mid");
  EXPECT_STREQ(values[1].kind, "gauge");
  EXPECT_EQ(values[1].value, -4);
  EXPECT_EQ(values[2].name, "zeta");
  EXPECT_STREQ(values[2].kind, "counter");
  EXPECT_EQ(values[2].value, 3);
}

TEST(MetricsTest, SnapshotHistogramsCarriesDerivedStats) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  h->Record(10);
  h->Record(1000);

  std::vector<HistogramStats> stats = registry.SnapshotHistograms();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "lat");
  EXPECT_EQ(stats[0].count, 2);
  EXPECT_EQ(stats[0].sum, 1010);
  EXPECT_EQ(stats[0].max, 1000);
  EXPECT_GE(stats[0].p99, stats[0].p50);
}

TEST(MetricsTest, ConcurrentRegistrationAndUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int64_t kIncrements = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Every thread find-or-creates the same handles while updating.
      for (int64_t i = 0; i < kIncrements; ++i) {
        registry.GetCounter("shared.counter")->Add();
        registry.GetHistogram("shared.hist")->Record(i + 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(),
            kThreads * kIncrements);
  EXPECT_EQ(registry.GetHistogram("shared.hist")->Count(),
            kThreads * kIncrements);
}

#else  // IMON_METRICS_DISABLED

TEST(MetricsTest, DisabledMutatorsAreNoOps) {
  Counter c;
  c.Add(5);
  EXPECT_EQ(c.Value(), 0);
  Gauge g;
  g.Set(7);
  g.Add(3);
  EXPECT_EQ(g.Value(), 0);
  Histogram h;
  h.Record(9);
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_EQ(h.Max(), 0);
}

#endif  // IMON_METRICS_DISABLED

// --- Log2Buckets ---------------------------------------------------------
//
// Unlike the telemetry types above, Log2Buckets is workload *data* (the
// per-template cost distributions behind imp_templates quantiles), so it
// is never compiled out and these tests run in every build flavor.

/// Reference quantile with the implementation's rank convention:
/// 0-based index floor(p/100 * n), clamped to n-1.
int64_t TrueQuantile(std::vector<int64_t> values, double p) {
  std::sort(values.begin(), values.end());
  auto n = static_cast<int64_t>(values.size());
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return values[static_cast<size_t>(rank)];
}

/// The log2 accuracy contract: a reported quantile never under-reports
/// the true order statistic and overshoots it by strictly less than 2x
/// (bucket upper bound 2^i - 1, clamped to the observed max).
void ExpectWithinLog2Envelope(const Log2Buckets& buckets,
                              const std::vector<int64_t>& values, double p) {
  int64_t truth = TrueQuantile(values, p);
  int64_t reported = buckets.ValueAtPercentile(p);
  EXPECT_GE(reported, truth) << "p" << p;
  EXPECT_LT(reported, 2 * truth) << "p" << p;
  EXPECT_LE(reported, *std::max_element(values.begin(), values.end()))
      << "p" << p;
}

TEST(Log2BucketsTest, ConstantDistributionIsExact) {
  Log2Buckets b;
  std::vector<int64_t> values(500, 777);
  for (int64_t v : values) b.Record(v);
  EXPECT_EQ(b.count, 500);
  EXPECT_EQ(b.max, 777);
  // Every quantile clamps to the observed max: exact for constants.
  EXPECT_EQ(b.ValueAtPercentile(50), 777);
  EXPECT_EQ(b.ValueAtPercentile(95), 777);
  EXPECT_EQ(b.ValueAtPercentile(99), 777);
}

TEST(Log2BucketsTest, BimodalDistributionWithinErrorBounds) {
  Log2Buckets b;
  std::vector<int64_t> values;
  for (int i = 0; i < 450; ++i) values.push_back(10);     // fast mode
  for (int i = 0; i < 50; ++i) values.push_back(9000);    // slow mode
  for (int64_t v : values) b.Record(v);
  ExpectWithinLog2Envelope(b, values, 50);
  ExpectWithinLog2Envelope(b, values, 95);
  ExpectWithinLog2Envelope(b, values, 99);
  // The slow mode tops out at the observed max, reported exactly.
  EXPECT_EQ(b.ValueAtPercentile(99), 9000);
}

TEST(Log2BucketsTest, HeavyTailDistributionWithinErrorBounds) {
  // Deterministic power-law-ish tail: v = i^3 + 1 spans seven orders of
  // magnitude over 1000 samples.
  Log2Buckets b;
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 1000; ++i) values.push_back(i * i * i + 1);
  for (int64_t v : values) b.Record(v);
  for (double p : {50.0, 95.0, 99.0}) ExpectWithinLog2Envelope(b, values, p);
}

TEST(Log2BucketsTest, MergeMatchesUnionRecording) {
  Log2Buckets left, right, whole;
  std::vector<int64_t> values;
  for (int64_t i = 1; i <= 600; ++i) values.push_back(i * 17 % 4096 + 1);
  for (size_t i = 0; i < values.size(); ++i) {
    (i % 2 == 0 ? left : right).Record(values[i]);
    whole.Record(values[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count, whole.count);
  EXPECT_EQ(left.max, whole.max);
  EXPECT_EQ(left.counts, whole.counts);
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_EQ(left.ValueAtPercentile(p), whole.ValueAtPercentile(p));
  }
}

TEST(Log2BucketsTest, EdgeValuesDoNotOverflowBuckets) {
  Log2Buckets b;
  b.Record(0);
  b.Record(-5);
  b.Record(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(b.count, 3);
  EXPECT_EQ(b.max, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(b.ValueAtPercentile(0), 0);
  EXPECT_EQ(b.ValueAtPercentile(100), std::numeric_limits<int64_t>::max());
}

}  // namespace
}  // namespace imon::metrics
