// Rollup correctness of the metrics-history flight recorder: cascade
// bucket boundaries, ring wrap-around under bounded memory, and the
// invariant that coarse entries are exact unions of the raw ticks they
// cover.

#include "common/metrics_history.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace imon::metrics {
namespace {

constexpr int64_t kSec = 1000000;
constexpr int64_t kRaw = MetricsHistory::kResolutionSeconds[0] * kSec;

std::vector<HistorySample> SamplesOf(const MetricsHistory& h,
                                     const std::string& name,
                                     int32_t resolution) {
  std::vector<HistorySample> out;
  for (const HistorySample& s : h.Snapshot()) {
    if (s.name == name && s.resolution == resolution) out.push_back(s);
  }
  return out;
}

#ifndef IMON_METRICS_DISABLED

TEST(MetricsHistory, RollupCascadeBoundaries) {
  MetricsHistory h;
  // Two points inside one 10s bucket, one point in the next bucket but
  // the same 1m bucket, one point in the next 1m bucket but the same
  // 10m bucket.
  h.Record("s", 5, 11 * kSec);   // raw tick 10s, 1m tick 0, 10m tick 0
  h.Record("s", 7, 19 * kSec);   // same raw tick
  h.Record("s", 1, 21 * kSec);   // raw tick 20s, same 1m tick
  h.Record("s", 9, 61 * kSec);   // 1m tick 60s, same 10m tick

  auto raw = SamplesOf(h, "s", 10);
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0].tick_micros, 10 * kSec);
  EXPECT_EQ(raw[0].min, 5);
  EXPECT_EQ(raw[0].max, 7);
  EXPECT_EQ(raw[0].sum, 12);
  EXPECT_EQ(raw[0].count, 2);
  EXPECT_EQ(raw[0].last, 7);
  EXPECT_EQ(raw[1].tick_micros, 20 * kSec);
  EXPECT_EQ(raw[1].count, 1);
  EXPECT_EQ(raw[2].tick_micros, 60 * kSec);
  EXPECT_EQ(raw[2].last, 9);

  auto one_m = SamplesOf(h, "s", 60);
  ASSERT_EQ(one_m.size(), 2u);
  EXPECT_EQ(one_m[0].tick_micros, 0);
  EXPECT_EQ(one_m[0].min, 1);
  EXPECT_EQ(one_m[0].max, 7);
  EXPECT_EQ(one_m[0].sum, 13);
  EXPECT_EQ(one_m[0].count, 3);
  EXPECT_EQ(one_m[1].tick_micros, 60 * kSec);
  EXPECT_EQ(one_m[1].count, 1);

  auto ten_m = SamplesOf(h, "s", 600);
  ASSERT_EQ(ten_m.size(), 1u);
  EXPECT_EQ(ten_m[0].tick_micros, 0);
  EXPECT_EQ(ten_m[0].sum, 22);
  EXPECT_EQ(ten_m[0].count, 4);
  EXPECT_EQ(ten_m[0].last, 9);
}

TEST(MetricsHistory, RingWrapRetainsAtLeastOneHourInFixedMemory) {
  MetricsHistory h;
  // Feed 2 hours of 10s ticks — more than the raw ring holds — and
  // check that (a) the ring stays at its fixed capacity, (b) the
  // retained raw span still covers at least one hour, and (c) the
  // newest ticks survived the wrap, the oldest were evicted.
  const int64_t ticks = 720;  // 2 h of 10 s buckets
  for (int64_t i = 0; i < ticks; ++i) {
    h.Record("wrap", i, i * kRaw);
  }
  auto raw = SamplesOf(h, "wrap", 10);
  ASSERT_EQ(raw.size(), MetricsHistory::kRingCapacity[0]);
  int64_t span = raw.back().tick_micros - raw.front().tick_micros;
  EXPECT_GE(span, 3600 * kSec);
  EXPECT_EQ(raw.back().tick_micros, (ticks - 1) * kRaw);
  EXPECT_EQ(raw.front().tick_micros,
            (ticks - static_cast<int64_t>(raw.size())) * kRaw);
  // The coarser rings absorbed the full window without growing.
  EXPECT_LE(SamplesOf(h, "wrap", 60).size(),
            MetricsHistory::kRingCapacity[1]);
  EXPECT_LE(SamplesOf(h, "wrap", 600).size(),
            MetricsHistory::kRingCapacity[2]);
}

TEST(MetricsHistory, CoarseEntriesAreUnionsOfRawTicks) {
  MetricsHistory h;
  // A deterministic pseudo-random stream over ~40 minutes; every coarse
  // entry must equal the merge of the raw ticks inside its bucket.
  uint64_t state = 42;
  for (int64_t i = 0; i < 2400; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    int64_t value = static_cast<int64_t>(state % 1000);
    h.Record("u", value, i * kSec);
  }
  auto raw = SamplesOf(h, "u", 10);
  ASSERT_FALSE(raw.empty());
  for (int32_t level : {60, 600}) {
    for (const HistorySample& coarse : SamplesOf(h, "u", level)) {
      HistorySample merged;
      merged.min = INT64_MAX;
      merged.max = INT64_MIN;
      for (const HistorySample& r : raw) {
        if (r.tick_micros < coarse.tick_micros ||
            r.tick_micros >= coarse.tick_micros + level * kSec) {
          continue;
        }
        merged.min = std::min(merged.min, r.min);
        merged.max = std::max(merged.max, r.max);
        merged.sum += r.sum;
        merged.count += r.count;
        merged.last = r.last;
      }
      if (merged.count == 0) continue;  // raw ticks already evicted
      EXPECT_EQ(coarse.min, merged.min) << level << "s @ "
                                        << coarse.tick_micros;
      EXPECT_EQ(coarse.max, merged.max);
      EXPECT_EQ(coarse.sum, merged.sum);
      EXPECT_EQ(coarse.count, merged.count);
      EXPECT_EQ(coarse.last, merged.last);
    }
  }
}

TEST(MetricsHistory, AggregateWindowAndBackwardClock) {
  MetricsHistory h;
  h.Record("a", 10, 100 * kSec);
  h.Record("a", 20, 110 * kSec);
  h.Record("a", 30, 120 * kSec);
  // A point older than the newest bucket merges into it instead of
  // tearing the ring (tick monotonicity under clock backwardness).
  h.Record("a", 40, 105 * kSec);

  HistoryAggregate all = h.Aggregate("a", 10, 0, 200 * kSec);
  EXPECT_EQ(all.count, 4);
  EXPECT_EQ(all.sum, 100);
  EXPECT_EQ(all.min, 10);
  EXPECT_EQ(all.max, 40);

  HistoryAggregate window = h.Aggregate("a", 10, 110 * kSec, 115 * kSec);
  EXPECT_EQ(window.ticks, 1);
  EXPECT_EQ(window.sum, 20);

  EXPECT_TRUE(h.Aggregate("a", 10, 500 * kSec, 600 * kSec).empty());
  EXPECT_TRUE(h.Aggregate("missing", 10, 0, 200 * kSec).empty());
  EXPECT_TRUE(h.Aggregate("a", 7, 0, 200 * kSec).empty());  // bad level

  auto raw = SamplesOf(h, "a", 10);
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw.back().tick_micros, 120 * kSec);
  EXPECT_EQ(raw.back().count, 2);  // 30 and the late 40
}

TEST(MetricsHistory, PersistenceCursorSeesEachCompletedTickOnce) {
  MetricsHistory h;
  h.Record("c", 1, 10 * kSec);
  h.Record("c", 2, 20 * kSec);
  h.Record("c", 3, 30 * kSec);  // still open at now=35s

  auto first = h.SnapshotRawCompletedSince(0, 35 * kSec);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].tick_micros, 10 * kSec);
  EXPECT_EQ(first[1].tick_micros, 20 * kSec);

  int64_t cursor = first.back().tick_micros;
  auto again = h.SnapshotRawCompletedSince(cursor, 35 * kSec);
  EXPECT_TRUE(again.empty());

  auto later = h.SnapshotRawCompletedSince(cursor, 45 * kSec);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].tick_micros, 30 * kSec);
}

TEST(MetricsHistory, SampleCoversCountersGaugesAndPercentiles) {
  MetricsRegistry registry;
  registry.GetCounter("ctr")->Add(5);
  registry.GetGauge("gau")->Set(17);
  Histogram* hist = registry.GetHistogram("lat");
  for (int v = 1; v <= 100; ++v) hist->Record(v);

  MetricsHistory h;
  h.Sample(registry, 10 * kSec);

  HistoryAggregate ctr = h.Aggregate("ctr", 10, 0, 20 * kSec);
  EXPECT_EQ(ctr.last, 5);
  HistoryAggregate gau = h.Aggregate("gau", 10, 0, 20 * kSec);
  EXPECT_EQ(gau.last, 17);
  EXPECT_FALSE(h.Aggregate("lat.p50", 10, 0, 20 * kSec).empty());
  EXPECT_FALSE(h.Aggregate("lat.p95", 10, 0, 20 * kSec).empty());
  EXPECT_FALSE(h.Aggregate("lat.p99", 10, 0, 20 * kSec).empty());
  HistoryAggregate cnt = h.Aggregate("lat.count", 10, 0, 20 * kSec);
  EXPECT_EQ(cnt.last, 100);
}

#else  // IMON_METRICS_DISABLED

TEST(MetricsHistory, CompiledOutIsInertAndEmpty) {
  MetricsHistory h;
  h.Record("s", 5, 11 * kSec);
  MetricsRegistry registry;
  h.Sample(registry, 20 * kSec);
  EXPECT_TRUE(h.Snapshot().empty());
  EXPECT_TRUE(h.Aggregate("s", 10, 0, 100 * kSec).empty());
  EXPECT_TRUE(h.SnapshotRawCompletedSince(0, 100 * kSec).empty());
  EXPECT_EQ(h.SeriesCount(), 0u);
}

#endif  // IMON_METRICS_DISABLED

}  // namespace
}  // namespace imon::metrics
