#include "common/status.h"

#include <gtest/gtest.h>

namespace imon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table foo");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "table foo");
  EXPECT_EQ(s.ToString(), "NotFound: table foo");
}

TEST(StatusTest, AllFactoryCodesDistinct) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Busy("").code(), StatusCode::kBusy);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

Status FailsAt(int i, int fail_at) {
  if (i == fail_at) return Status::Aborted("at " + std::to_string(i));
  return Status::OK();
}

Status ChainThree(int fail_at) {
  IMON_RETURN_IF_ERROR(FailsAt(0, fail_at));
  IMON_RETURN_IF_ERROR(FailsAt(1, fail_at));
  IMON_RETURN_IF_ERROR(FailsAt(2, fail_at));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagatesFirstFailure) {
  EXPECT_TRUE(ChainThree(-1).ok());
  EXPECT_EQ(ChainThree(1).message(), "at 1");
  EXPECT_TRUE(ChainThree(2).IsAborted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Busy("lock timeout");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBusy());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.TakeValue();
  EXPECT_EQ(*v, 7);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterEven(int v) {
  IMON_ASSIGN_OR_RETURN(int half, HalveEven(v));
  IMON_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_TRUE(QuarterEven(6).status().IsInvalidArgument());  // 3 is odd
  EXPECT_TRUE(QuarterEven(5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace imon
