#include "common/value.h"

#include <gtest/gtest.h>

namespace imon {
namespace {

TEST(ValueTest, Constructors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_FALSE(Value::Int(1).is_null());
  EXPECT_EQ(Value::Int(-5).AsInt(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Text("abc").AsText(), "abc");
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-999999)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Text("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null(TypeId::kText)), 0);
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, TextComparison) {
  EXPECT_LT(Value::Text("abc").Compare(Value::Text("abd")), 0);
  EXPECT_EQ(Value::Text("x").Compare(Value::Text("x")), 0);
  // Numbers sort before text in the total order.
  EXPECT_LT(Value::Int(999).Compare(Value::Text("0")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::Text("hello").Hash(), Value::Text("hello").Hash());
  EXPECT_NE(Value::Text("hello").Hash(), Value::Text("hellp").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null(TypeId::kText).Hash());
}

TEST(ValueTest, CastIntToDouble) {
  auto r = Value::Int(7).CastTo(TypeId::kDouble);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsDouble(), 7.0);
}

TEST(ValueTest, CastTextToInt) {
  auto ok = Value::Text("123").CastTo(TypeId::kInt);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->AsInt(), 123);
  EXPECT_FALSE(Value::Text("12x").CastTo(TypeId::kInt).ok());
  EXPECT_FALSE(Value::Text("").CastTo(TypeId::kInt).ok());
}

TEST(ValueTest, CastNullKeepsNull) {
  auto r = Value::Null().CastTo(TypeId::kText);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
  EXPECT_EQ(r->type(), TypeId::kText);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Text("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

class ValueRoundTripTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTripTest, SerializeDeserialize) {
  const Value& v = GetParam();
  std::string buf;
  v.SerializeTo(&buf);
  size_t offset = 0;
  auto r = Value::DeserializeFrom(buf, &offset);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(r->is_null(), v.is_null());
  EXPECT_EQ(r->type(), v.type());
  if (!v.is_null()) {
    EXPECT_EQ(r->Compare(v), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ValueRoundTripTest,
    ::testing::Values(Value::Null(), Value::Null(TypeId::kText),
                      Value::Int(0), Value::Int(-1),
                      Value::Int(INT64_MAX), Value::Int(INT64_MIN),
                      Value::Double(0.0), Value::Double(-3.75),
                      Value::Double(1e300), Value::Text(""),
                      Value::Text("hello world"),
                      Value::Text(std::string("nul\0byte", 8)),
                      Value::Text(std::string(5000, 'x'))));

TEST(RowTest, RoundTrip) {
  Row row = {Value::Int(1), Value::Text("protein"), Value::Double(2.5),
             Value::Null()};
  std::string buf;
  SerializeRow(row, &buf);
  auto r = DeserializeRow(buf);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 4u);
  EXPECT_EQ((*r)[0].AsInt(), 1);
  EXPECT_EQ((*r)[1].AsText(), "protein");
  EXPECT_DOUBLE_EQ((*r)[2].AsDouble(), 2.5);
  EXPECT_TRUE((*r)[3].is_null());
}

TEST(RowTest, DeserializeRejectsTruncation) {
  Row row = {Value::Int(1), Value::Text("abc")};
  std::string buf;
  SerializeRow(row, &buf);
  for (size_t cut : {buf.size() - 1, buf.size() / 2, size_t{3}}) {
    EXPECT_FALSE(DeserializeRow(buf.substr(0, cut)).ok()) << "cut=" << cut;
  }
}

TEST(RowTest, HashRowDiffersOnOrder) {
  Row a = {Value::Int(1), Value::Int(2)};
  Row b = {Value::Int(2), Value::Int(1)};
  EXPECT_NE(HashRow(a), HashRow(b));
  EXPECT_EQ(HashRow(a), HashRow({Value::Int(1), Value::Int(2)}));
}

}  // namespace
}  // namespace imon
