#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace imon {
namespace {

TEST(HashTest, Fnv1aKnownVectors) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(HashStatement(""), 14695981039346656037ULL);
  EXPECT_EQ(HashStatement("a"), 12638187200555641996ULL);
}

TEST(HashTest, StatementHashIsStable) {
  const std::string q = "select p.nref_id from protein p where p.nref_id = 1";
  EXPECT_EQ(HashStatement(q), HashStatement(q));
}

TEST(HashTest, DistinctStatementsRarelyCollide) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 50000; ++i) {
    hashes.insert(HashStatement("select x from t where id = " +
                                std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 50000u);
}

TEST(HashTest, HashCombineOrderSensitive) {
  uint64_t a = HashStatement("a");
  uint64_t b = HashStatement("b");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

}  // namespace
}  // namespace imon
