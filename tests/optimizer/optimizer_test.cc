#include <gtest/gtest.h>

#include "optimizer/binder.h"
#include "optimizer/cardinality.h"
#include "optimizer/planner.h"
#include "sql/parser.h"

namespace imon::optimizer {
namespace {

using catalog::Catalog;
using catalog::ColumnInfo;
using catalog::ObjectId;
using catalog::TableInfo;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() {
    TableInfo protein;
    protein.name = "protein";
    protein.columns = {Col("id", TypeId::kInt), Col("len", TypeId::kInt),
                       Col("name", TypeId::kText)};
    protein.structure = catalog::StorageStructure::kHeap;
    protein.row_count = 100000;
    protein.main_pages = 100;
    protein.overflow_pages = 1500;
    protein_id_ = *catalog_.CreateTable(protein);

    TableInfo organism;
    organism.name = "organism";
    organism.columns = {Col("pid", TypeId::kInt), Col("label", TypeId::kText)};
    organism.row_count = 140000;
    organism.main_pages = 2000;
    organism_id_ = *catalog_.CreateTable(organism);

    // Unique index on protein.id (the pkey analog).
    catalog::IndexInfo pkey;
    pkey.name = "protein_pkey";
    pkey.table_id = protein_id_;
    pkey.key_columns = {0};
    pkey.unique = true;
    pkey_id_ = *catalog_.CreateIndex(pkey);
  }

  static ColumnInfo Col(const char* name, TypeId type) {
    ColumnInfo c;
    c.name = name;
    c.type = type;
    return c;
  }

  /// Parse + bind a SELECT; the statement is kept alive in stmt_.
  BoundSelect MustBind(const std::string& sql) {
    auto parsed = sql::Parse(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    stmt_ = std::move(parsed.TakeValue());
    Binder binder(&catalog_);
    auto bound =
        binder.BindSelect(static_cast<sql::SelectStmt*>(stmt_.get()));
    EXPECT_TRUE(bound.ok()) << sql << " -> " << bound.status();
    return bound.TakeValue();
  }

  std::unique_ptr<PlanNode> MustPlan(const BoundSelect& bound,
                                     PlannerOptions options = {}) {
    Planner planner(&catalog_, std::move(options));
    auto plan = planner.PlanJoinTree(bound);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return plan.TakeValue();
  }

  Catalog catalog_;
  ObjectId protein_id_;
  ObjectId organism_id_;
  ObjectId pkey_id_;
  sql::StatementPtr stmt_;
};

TEST_F(OptimizerTest, BinderResolvesQualifiedAndBareColumns) {
  BoundSelect bound = MustBind(
      "SELECT p.id, len, label FROM protein p, organism o WHERE "
      "p.id = o.pid");
  ASSERT_EQ(bound.items.size(), 3u);
  EXPECT_EQ(bound.items[0].expr->bound_table, 0);
  EXPECT_EQ(bound.items[0].expr->bound_column, 0);
  EXPECT_EQ(bound.items[1].expr->bound_table, 0);  // len only in protein
  EXPECT_EQ(bound.items[2].expr->bound_table, 1);
  // References collected for the monitor.
  EXPECT_EQ(bound.references.tables.size(), 2u);
  EXPECT_TRUE(bound.references.available_indexes.count(pkey_id_));
}

TEST_F(OptimizerTest, BinderRejectsUnknownAndAmbiguous) {
  auto parsed = sql::Parse("SELECT nothing FROM protein");
  Binder binder(&catalog_);
  auto bound =
      binder.BindSelect(static_cast<sql::SelectStmt*>(parsed->get()));
  EXPECT_TRUE(bound.status().IsNotFound());

  // Same alias twice.
  parsed = sql::Parse("SELECT 1 FROM protein p, organism p");
  bound = binder.BindSelect(static_cast<sql::SelectStmt*>(parsed->get()));
  EXPECT_TRUE(bound.status().IsInvalidArgument());

  // Aggregates in WHERE are rejected.
  parsed = sql::Parse("SELECT id FROM protein WHERE count(*) > 1");
  bound = binder.BindSelect(static_cast<sql::SelectStmt*>(parsed->get()));
  EXPECT_FALSE(bound.ok());
}

TEST_F(OptimizerTest, BinderEnforcesGroupByCoverage) {
  auto parsed =
      sql::Parse("SELECT len, count(*) FROM protein GROUP BY name");
  Binder binder(&catalog_);
  auto bound =
      binder.BindSelect(static_cast<sql::SelectStmt*>(parsed->get()));
  EXPECT_TRUE(bound.status().IsInvalidArgument());
}

TEST_F(OptimizerTest, StarExpansionCoversAllTables) {
  BoundSelect bound = MustBind("SELECT * FROM protein p, organism o");
  EXPECT_EQ(bound.items.size(), 5u);  // 3 + 2 columns
}

TEST_F(OptimizerTest, UniqueIndexPointLookupWins) {
  BoundSelect bound = MustBind("SELECT len FROM protein WHERE id = 42");
  auto plan = MustPlan(bound);
  EXPECT_EQ(plan->kind, PlanNodeKind::kScan);
  EXPECT_EQ(plan->access.kind, AccessPathKind::kSecondaryIndex);
  EXPECT_EQ(plan->access.index.id, pkey_id_);
  EXPECT_LE(plan->est_rows, 1.5);
}

TEST_F(OptimizerTest, SeqScanWhenNoUsableIndex) {
  BoundSelect bound = MustBind("SELECT id FROM protein WHERE len > 100");
  auto plan = MustPlan(bound);
  EXPECT_EQ(plan->access.kind, AccessPathKind::kSeqScan);
  ASSERT_EQ(plan->filters.size(), 1u);
}

TEST_F(OptimizerTest, VirtualIndexChangesThePlan) {
  catalog::IndexInfo virt;
  virt.id = -5;
  virt.name = "virt_len";
  virt.table_id = protein_id_;
  virt.key_columns = {1};
  virt.is_virtual = true;

  BoundSelect bound = MustBind("SELECT id FROM protein WHERE len = 7");
  PlannerOptions options;
  options.virtual_indexes = {virt};
  Planner planner(&catalog_, options);
  auto plan = planner.PlanJoinTree(bound);
  ASSERT_TRUE(plan.ok());
  // Without statistics, equality selectivity defaults to 10%; the
  // unclustered probe of 10k rows loses to the scan. The *what-if*
  // machinery still reports the index when it wins — bound tighter:
  BoundSelect tight = MustBind(
      "SELECT id FROM protein WHERE len = 7 AND id = 3");
  auto tight_plan = planner.PlanJoinTree(tight);
  ASSERT_TRUE(tight_plan.ok());
  PlanSummary summary = planner.Summarize(**tight_plan, tight);
  // The unique pkey path dominates; used indexes listed for the monitor.
  EXPECT_FALSE(summary.used_indexes.empty());
}

TEST_F(OptimizerTest, JoinPrefersHashOverCartesian) {
  BoundSelect bound = MustBind(
      "SELECT p.id FROM protein p JOIN organism o ON p.id = o.pid");
  auto plan = MustPlan(bound);
  EXPECT_TRUE(plan->kind == PlanNodeKind::kHashJoin ||
              plan->kind == PlanNodeKind::kIndexNLJoin)
      << plan->ToString();
  EXPECT_EQ(plan->table_mask, 0b11u);
}

TEST_F(OptimizerTest, IndexNLJoinChosenForSelectiveOuter) {
  // Outer restricted to one row by the unique pkey; the inner probe goes
  // through protein's pkey when organism drives... construct the
  // direction where the indexed table is inner:
  BoundSelect bound = MustBind(
      "SELECT o.label FROM organism o JOIN protein p ON o.pid = p.id "
      "WHERE o.label = 'x'");
  auto plan = MustPlan(bound);
  // The planner should use protein_pkey for the join, either as an
  // index-NL inner or at least report a join, never a cartesian NL.
  EXPECT_NE(plan->kind, PlanNodeKind::kNestedLoopJoin) << plan->ToString();
}

TEST_F(OptimizerTest, ThreeWayJoinCoversAllTables) {
  TableInfo extra;
  extra.name = "extra";
  extra.columns = {Col("pid", TypeId::kInt), Col("v", TypeId::kDouble)};
  extra.row_count = 5000;
  extra.main_pages = 50;
  ASSERT_TRUE(catalog_.CreateTable(extra).ok());

  BoundSelect bound = MustBind(
      "SELECT p.id FROM protein p JOIN organism o ON p.id = o.pid JOIN "
      "extra e ON p.id = e.pid WHERE e.v > 1.5");
  auto plan = MustPlan(bound);
  EXPECT_EQ(plan->table_mask, 0b111u);
  // Both joins are present in the tree.
  int joins = 0;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.kind != PlanNodeKind::kScan) ++joins;
    if (n.left) walk(*n.left);
    if (n.right) walk(*n.right);
  };
  walk(*plan);
  EXPECT_EQ(joins, 2);
}

TEST_F(OptimizerTest, CartesianProductStillPlans) {
  BoundSelect bound = MustBind("SELECT p.id FROM protein p, organism o");
  auto plan = MustPlan(bound);
  EXPECT_EQ(plan->table_mask, 0b11u);
  EXPECT_GT(plan->est_rows, 1e9);  // 100k x 140k
}

TEST_F(OptimizerTest, SummaryAddsSortAndAggregateSurcharges) {
  BoundSelect plain = MustBind("SELECT id FROM protein");
  Planner planner(&catalog_);
  auto p1 = planner.PlanJoinTree(plain);
  double base = planner.Summarize(**p1, plain).TotalCost();

  BoundSelect sorted = MustBind("SELECT id FROM protein ORDER BY len");
  auto p2 = planner.PlanJoinTree(sorted);
  double with_sort = planner.Summarize(**p2, sorted).TotalCost();
  EXPECT_GT(with_sort, base);
}

TEST_F(OptimizerTest, CardinalityUsesHistograms) {
  // Attach a histogram: len uniform over [0, 99].
  std::vector<Value> values;
  for (int i = 0; i < 10000; ++i) values.push_back(Value::Int(i % 100));
  catalog::ColumnStats stats;
  stats.has_histogram = true;
  stats.histogram = catalog::Histogram::Build(values, 32);
  ASSERT_TRUE(catalog_.SetColumnStats(protein_id_, 1, stats).ok());

  BoundSelect bound = MustBind("SELECT id FROM protein WHERE len = 7");
  CardinalityEstimator est(&catalog_, &bound.tables);
  double sel = est.ConjunctSelectivity(*bound.conjuncts[0]);
  EXPECT_NEAR(sel, 0.01, 0.003);  // 1 of 100 distinct values

  BoundSelect range = MustBind(
      "SELECT id FROM protein WHERE len BETWEEN 10 AND 29");
  double range_sel = est.ConjunctSelectivity(*range.conjuncts[0]);
  EXPECT_NEAR(range_sel, 0.2, 0.06);
}

TEST_F(OptimizerTest, CardinalityDefaultsWithoutStats) {
  BoundSelect bound = MustBind("SELECT id FROM protein WHERE name = 'x'");
  CardinalityEstimator est(&catalog_, &bound.tables);
  EXPECT_DOUBLE_EQ(est.ConjunctSelectivity(*bound.conjuncts[0]),
                   kDefaultEqSelectivity);
}

TEST_F(OptimizerTest, TablesUsedMask) {
  BoundSelect bound = MustBind(
      "SELECT p.id FROM protein p, organism o WHERE p.id = o.pid AND "
      "p.len > 3");
  ASSERT_EQ(bound.conjuncts.size(), 2u);
  EXPECT_EQ(Binder::TablesUsed(*bound.conjuncts[0]), 0b11u);
  EXPECT_EQ(Binder::TablesUsed(*bound.conjuncts[1]), 0b01u);
}

}  // namespace
}  // namespace imon::optimizer
