#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace imon::catalog {
namespace {

TableInfo MakeTable(const std::string& name, int columns = 2) {
  TableInfo info;
  info.name = name;
  for (int i = 0; i < columns; ++i) {
    ColumnInfo col;
    col.name = "c" + std::to_string(i);
    col.type = TypeId::kInt;
    info.columns.push_back(col);
  }
  return info;
}

TEST(CatalogTest, CreateAndGetTable) {
  Catalog catalog;
  auto id = catalog.CreateTable(MakeTable("t"));
  ASSERT_TRUE(id.ok());
  auto info = catalog.GetTable("t");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->id, *id);
  EXPECT_EQ(info->columns.size(), 2u);
  EXPECT_EQ(info->columns[1].ordinal, 1);
  EXPECT_TRUE(catalog.HasTable("t"));
  auto by_id = catalog.GetTableById(*id);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->name, "t");
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  EXPECT_EQ(catalog.CreateTable(MakeTable("t")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DropTableRemovesIndexesAndStats) {
  Catalog catalog;
  auto tid = catalog.CreateTable(MakeTable("t"));
  ASSERT_TRUE(tid.ok());
  IndexInfo idx;
  idx.name = "t_c0";
  idx.table_id = *tid;
  idx.key_columns = {0};
  ASSERT_TRUE(catalog.CreateIndex(idx).ok());
  ColumnStats stats;
  stats.has_histogram = true;
  ASSERT_TRUE(catalog.SetColumnStats(*tid, 0, stats).ok());

  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_FALSE(catalog.GetTable("t").ok());
  EXPECT_FALSE(catalog.GetIndex("t_c0").ok());
  EXPECT_FALSE(catalog.GetColumnStats(*tid, 0).has_histogram);
  EXPECT_TRUE(catalog.DropTable("t").IsNotFound());
}

TEST(CatalogTest, IndexLifecycle) {
  Catalog catalog;
  auto tid = catalog.CreateTable(MakeTable("t"));
  IndexInfo idx;
  idx.name = "i1";
  idx.table_id = *tid;
  idx.key_columns = {1};
  idx.unique = true;
  auto iid = catalog.CreateIndex(idx);
  ASSERT_TRUE(iid.ok());
  EXPECT_EQ(catalog.CreateIndex(idx).status().code(),
            StatusCode::kAlreadyExists);

  auto table = catalog.GetTable("t");
  EXPECT_EQ(table->index_ids, std::vector<ObjectId>{*iid});
  auto on_table = catalog.IndexesOnTable(*tid);
  ASSERT_EQ(on_table.size(), 1u);
  EXPECT_TRUE(on_table[0].unique);

  ASSERT_TRUE(catalog.DropIndex("i1").ok());
  EXPECT_TRUE(catalog.GetTable("t")->index_ids.empty());
  EXPECT_TRUE(catalog.DropIndex("i1").IsNotFound());
}

TEST(CatalogTest, IndexOnUnknownTableRejected) {
  Catalog catalog;
  IndexInfo idx;
  idx.name = "i";
  idx.table_id = 999;
  EXPECT_TRUE(catalog.CreateIndex(idx).status().IsNotFound());
}

TEST(CatalogTest, UpdateTablePersistsMutableFields) {
  Catalog catalog;
  auto tid = catalog.CreateTable(MakeTable("t"));
  auto info = catalog.GetTableById(*tid);
  info->row_count = 42;
  info->overflow_pages = 7;
  info->structure = StorageStructure::kBtree;
  ASSERT_TRUE(catalog.UpdateTable(*info).ok());
  auto reread = catalog.GetTable("t");
  EXPECT_EQ(reread->row_count, 42);
  EXPECT_EQ(reread->overflow_pages, 7);
  EXPECT_EQ(reread->structure, StorageStructure::kBtree);
}

TEST(CatalogTest, ColumnStatsRoundTrip) {
  Catalog catalog;
  auto tid = catalog.CreateTable(MakeTable("t"));
  EXPECT_FALSE(catalog.GetColumnStats(*tid, 0).has_histogram);
  ColumnStats stats;
  stats.has_histogram = true;
  stats.histogram = Histogram::Build({Value::Int(1), Value::Int(2)});
  stats.built_at_micros = 123;
  ASSERT_TRUE(catalog.SetColumnStats(*tid, 0, stats).ok());
  auto got = catalog.GetColumnStats(*tid, 0);
  EXPECT_TRUE(got.has_histogram);
  EXPECT_EQ(got.built_at_micros, 123);
  EXPECT_EQ(got.histogram.total_rows(), 2);
  ASSERT_TRUE(catalog.ClearColumnStats(*tid).ok());
  EXPECT_FALSE(catalog.GetColumnStats(*tid, 0).has_histogram);
}

TEST(CatalogTest, VirtualTableNamespaceShared) {
  Catalog catalog;
  class Empty : public VirtualTableProvider {
   public:
    std::vector<ColumnInfo> Schema() const override { return {}; }
    std::vector<Row> Snapshot() const override { return {}; }
  };
  ASSERT_TRUE(
      catalog.RegisterVirtualTable("v", std::make_shared<Empty>()).ok());
  EXPECT_TRUE(catalog.HasVirtualTable("v"));
  EXPECT_NE(catalog.GetVirtualTable("v"), nullptr);
  // Names collide across real and virtual tables, both directions.
  EXPECT_EQ(catalog.CreateTable(MakeTable("v")).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog.CreateTable(MakeTable("t")).ok());
  EXPECT_EQ(
      catalog.RegisterVirtualTable("t", std::make_shared<Empty>()).code(),
      StatusCode::kAlreadyExists);
}

TEST(CatalogTest, FindColumn) {
  TableInfo t = MakeTable("t", 3);
  for (size_t i = 0; i < t.columns.size(); ++i) {
    t.columns[i].ordinal = static_cast<int>(i);
  }
  EXPECT_EQ(t.FindColumn("c1"), 1);
  EXPECT_FALSE(t.FindColumn("missing").has_value());
}

}  // namespace
}  // namespace imon::catalog
