#include "catalog/histogram.h"

#include <gtest/gtest.h>

#include <random>

namespace imon::catalog {
namespace {

std::vector<Value> Ints(std::initializer_list<int64_t> vs) {
  std::vector<Value> out;
  for (int64_t v : vs) out.push_back(Value::Int(v));
  return out;
}

TEST(HistogramTest, EmptyInput) {
  Histogram h = Histogram::Build({});
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.EqualitySelectivity(Value::Int(1)), 0.0);
}

TEST(HistogramTest, CountsNullsAndDistinct) {
  Histogram h = Histogram::Build(
      {Value::Int(1), Value::Null(), Value::Int(2), Value::Int(2),
       Value::Null()});
  EXPECT_EQ(h.total_rows(), 5);
  EXPECT_EQ(h.null_count(), 2);
  EXPECT_EQ(h.distinct_count(), 2);
  EXPECT_EQ(h.min().AsInt(), 1);
  EXPECT_EQ(h.max().AsInt(), 2);
}

TEST(HistogramTest, EqualitySelectivityUniform) {
  std::vector<Value> values;
  for (int i = 0; i < 1000; ++i) values.push_back(Value::Int(i % 100));
  Histogram h = Histogram::Build(values);
  // 100 distinct values, each ~1% of rows.
  EXPECT_NEAR(h.EqualitySelectivity(Value::Int(5)), 0.01, 0.002);
  // Out-of-range equality is impossible.
  EXPECT_EQ(h.EqualitySelectivity(Value::Int(5000)), 0.0);
  EXPECT_EQ(h.EqualitySelectivity(Value::Int(-1)), 0.0);
}

TEST(HistogramTest, NullSelectivity) {
  std::vector<Value> values(80, Value::Int(1));
  for (int i = 0; i < 20; ++i) values.push_back(Value::Null());
  Histogram h = Histogram::Build(values);
  EXPECT_NEAR(h.EqualitySelectivity(Value::Null()), 0.2, 1e-9);
}

TEST(HistogramTest, RangeSelectivityUniformData) {
  std::vector<Value> values;
  for (int i = 0; i < 10000; ++i) values.push_back(Value::Int(i));
  Histogram h = Histogram::Build(values, 64);
  // [2500, 7500) covers ~50%.
  double sel = h.RangeSelectivity(Value::Int(2500), true, true,
                                  Value::Int(7500), true, false);
  EXPECT_NEAR(sel, 0.5, 0.05);
  // Unbounded sides.
  EXPECT_NEAR(h.RangeSelectivity(Value::Int(9000), true, true, Value(),
                                 false, false),
              0.1, 0.05);
  EXPECT_NEAR(h.RangeSelectivity(Value(), false, false, Value::Int(1000),
                                 true, false),
              0.1, 0.05);
  // Entire domain.
  EXPECT_NEAR(h.RangeSelectivity(Value(), false, false, Value(), false,
                                 false),
              1.0, 0.01);
}

TEST(HistogramTest, RangeSelectivitySkewedData) {
  // 90% of values are 0, the rest uniform in [1,100].
  std::vector<Value> values(9000, Value::Int(0));
  std::mt19937 rng(5);
  for (int i = 0; i < 1000; ++i) {
    values.push_back(Value::Int(1 + rng() % 100));
  }
  Histogram h = Histogram::Build(values, 32);
  // The equi-depth buckets concentrate around 0.
  double sel_zero = h.RangeSelectivity(Value::Int(0), true, true,
                                       Value::Int(0), true, true);
  EXPECT_GT(sel_zero, 0.3);  // point query on the heavy value is large
  double sel_tail = h.RangeSelectivity(Value::Int(50), true, true,
                                       Value::Int(100), true, true);
  EXPECT_LT(sel_tail, 0.2);
}

TEST(HistogramTest, SingleDistinctValue) {
  Histogram h = Histogram::Build(std::vector<Value>(50, Value::Int(7)));
  EXPECT_EQ(h.distinct_count(), 1);
  EXPECT_NEAR(h.EqualitySelectivity(Value::Int(7)), 1.0, 1e-9);
  EXPECT_NEAR(h.RangeSelectivity(Value::Int(0), true, true, Value::Int(10),
                                 true, true),
              1.0, 1e-6);
}

TEST(HistogramTest, TextValues) {
  Histogram h = Histogram::Build(Ints({}));  // placeholder to silence lints
  std::vector<Value> values;
  for (int i = 0; i < 26; ++i) {
    for (int k = 0; k <= i; ++k) {
      values.push_back(Value::Text(std::string(1, 'a' + i)));
    }
  }
  h = Histogram::Build(values);
  EXPECT_EQ(h.distinct_count(), 26);
  double sel = h.RangeSelectivity(Value::Text("a"), true, true,
                                  Value::Text("m"), true, true);
  EXPECT_GT(sel, 0.1);
  EXPECT_LT(sel, 0.7);
}

TEST(HistogramTest, BucketsClampToDistinct) {
  Histogram h = Histogram::Build(Ints({1, 2, 3}), 32);
  EXPECT_LE(h.num_buckets(), 3);
  EXPECT_FALSE(h.ToString().empty());
}

class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, SelectivityMatchesTruthOnRandomRanges) {
  std::mt19937_64 rng(GetParam());
  std::vector<Value> values;
  std::vector<int64_t> raw;
  for (int i = 0; i < 5000; ++i) {
    // Mixture: uniform + cluster.
    int64_t v = (rng() % 2 == 0) ? static_cast<int64_t>(rng() % 1000)
                                 : 500 + static_cast<int64_t>(rng() % 10);
    values.push_back(Value::Int(v));
    raw.push_back(v);
  }
  Histogram h = Histogram::Build(values, 64);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = static_cast<int64_t>(rng() % 1000);
    int64_t hi = lo + static_cast<int64_t>(rng() % 300);
    double truth = 0;
    for (int64_t v : raw) {
      if (v >= lo && v <= hi) ++truth;
    }
    truth /= static_cast<double>(raw.size());
    double est = h.RangeSelectivity(Value::Int(lo), true, true,
                                    Value::Int(hi), true, true);
    EXPECT_NEAR(est, truth, 0.08) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace imon::catalog
