#include "ima/ima.h"

#include <gtest/gtest.h>

namespace imon::ima {
namespace {

using engine::Database;
using engine::DatabaseOptions;
using engine::QueryResult;

class ImaTest : public ::testing::Test {
 protected:
  ImaTest() : db_(DatabaseOptions{}) {
    EXPECT_TRUE(RegisterImaTables(&db_).ok());
  }

  QueryResult MustExec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? r.TakeValue() : QueryResult{};
  }

  Database db_;
};

TEST_F(ImaTest, RegistrationIsIdempotentlyRejected) {
  EXPECT_EQ(RegisterImaTables(&db_).code(), StatusCode::kAlreadyExists);
}

TEST_F(ImaTest, AllTablesQueryable) {
  for (const char* name : kImaTableNames) {
    auto r = db_.Execute(std::string("SELECT * FROM ") + name);
    EXPECT_TRUE(r.ok()) << name << ": " << r.status();
  }
}

TEST_F(ImaTest, StatementsAppearWithFrequency) {
  MustExec("CREATE TABLE t (v INT)");
  MustExec("INSERT INTO t VALUES (1)");
  MustExec("SELECT v FROM t WHERE v = 1");
  MustExec("SELECT v FROM t WHERE v = 1");
  MustExec("SELECT v FROM t WHERE v = 2");

  QueryResult r = MustExec(
      "SELECT query_text, frequency FROM imp_statements "
      "WHERE frequency >= 2");
  bool found = false;
  for (const Row& row : r.rows) {
    if (row[0].AsText() == "SELECT v FROM t WHERE v = 1") {
      found = true;
      EXPECT_EQ(row[1].AsInt(), 2);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ImaTest, WorkloadJoinsStatementsOverHash) {
  MustExec("CREATE TABLE t (v INT)");
  MustExec("INSERT INTO t VALUES (42)");
  MustExec("SELECT v FROM t");
  // The paper's schema: workload references statements via the hash key.
  QueryResult r = MustExec(
      "SELECT s.query_text, w.wallclock_nanos FROM imp_statements s JOIN "
      "imp_workload w ON s.hash = w.hash WHERE s.query_text = "
      "'SELECT v FROM t'");
  ASSERT_GE(r.rows.size(), 1u);
  EXPECT_GT(r.rows[0][1].AsInt(), 0);
}

TEST_F(ImaTest, TablesExposeStorageAndOverflow) {
  MustExec("CREATE TABLE small (v INT) WITH MAIN_PAGES = 1");
  for (int i = 0; i < 2000; ++i) {
    MustExec("INSERT INTO small VALUES (" + std::to_string(i) + ")");
  }
  QueryResult r = MustExec(
      "SELECT storage, overflow_pages, row_count FROM imp_tables WHERE "
      "table_name = 'small'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "HEAP");
  EXPECT_GT(r.rows[0][1].AsInt(), 0);
  EXPECT_EQ(r.rows[0][2].AsInt(), 2000);
}

TEST_F(ImaTest, AttributesTrackHistogramPresence) {
  MustExec("CREATE TABLE t (a INT, b INT)");
  MustExec("INSERT INTO t VALUES (1, 2)");
  QueryResult before = MustExec(
      "SELECT count(*) FROM imp_attributes WHERE has_histogram = 1");
  MustExec("ANALYZE t (a)");
  QueryResult after = MustExec(
      "SELECT count(*) FROM imp_attributes WHERE has_histogram = 1");
  EXPECT_EQ(after.rows[0][0].AsInt(), before.rows[0][0].AsInt() + 1);
}

TEST_F(ImaTest, IndexesListedWithUniqueness) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  MustExec("CREATE INDEX t_v ON t (v)");
  QueryResult r = MustExec(
      "SELECT index_name, is_unique FROM imp_indexes ORDER BY index_name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText(), "t_pkey");
  EXPECT_EQ(r.rows[0][1].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsText(), "t_v");
  EXPECT_EQ(r.rows[1][1].AsInt(), 0);
}

TEST_F(ImaTest, StatisticsSamplesAppear) {
  db_.SampleSystemStats();
  db_.SampleSystemStats();
  QueryResult r = MustExec("SELECT count(*) FROM imp_statistics");
  EXPECT_GE(r.rows[0][0].AsInt(), 2);
}

TEST_F(ImaTest, ReferencesRecordUsedObjects) {
  MustExec("CREATE TABLE t (v INT)");
  MustExec("INSERT INTO t VALUES (1)");
  MustExec("SELECT v FROM t WHERE v = 1");
  QueryResult r = MustExec(
      "SELECT count(*) FROM imp_references WHERE object_type = 'table'");
  EXPECT_GE(r.rows[0][0].AsInt(), 1);
  r = MustExec(
      "SELECT count(*) FROM imp_references WHERE object_type = "
      "'attribute'");
  EXPECT_GE(r.rows[0][0].AsInt(), 1);
}

TEST_F(ImaTest, SeqPushdownReturnsOnlyNewRows) {
  MustExec("CREATE TABLE t (v INT)");
  MustExec("INSERT INTO t VALUES (1)");
  for (int i = 0; i < 5; ++i) {
    MustExec("SELECT v FROM t WHERE v = " + std::to_string(i));
  }
  // Freeze the monitor so the comparison queries don't observe
  // themselves being recorded.
  db_.monitor()->set_enabled(false);
  QueryResult all = MustExec("SELECT seq FROM imp_workload");
  ASSERT_GE(all.rows.size(), 5u);
  int64_t mid = all.rows[all.rows.size() / 2][0].AsInt();
  QueryResult tail = MustExec("SELECT seq FROM imp_workload WHERE seq > " +
                              std::to_string(mid));
  EXPECT_LT(tail.rows.size(), all.rows.size());
  for (const Row& row : tail.rows) {
    EXPECT_GT(row[0].AsInt(), mid);
  }
  // The same predicate through the pushdown path agrees with a full scan
  // + filter on every table exposing a seq column.
  for (const char* table : {"imp_workload", "imp_references",
                            "imp_statistics"}) {
    QueryResult filtered = MustExec(std::string("SELECT count(*) FROM ") +
                                    table + " WHERE seq > 0");
    QueryResult full = MustExec(std::string("SELECT count(*) FROM ") + table);
    EXPECT_EQ(filtered.rows[0][0].AsInt(), full.rows[0][0].AsInt()) << table;
  }
}

TEST_F(ImaTest, ImaReadsCauseNoDiskAccess) {
  MustExec("CREATE TABLE t (v INT)");
  MustExec("INSERT INTO t VALUES (1)");
  MustExec("SELECT v FROM t");
  auto before = db_.disk()->stats();
  MustExec("SELECT * FROM imp_workload");
  MustExec("SELECT * FROM imp_statements");
  auto after = db_.disk()->stats();
  EXPECT_EQ(after.physical_reads, before.physical_reads);
  EXPECT_EQ(after.physical_writes, before.physical_writes);
}

}  // namespace
}  // namespace imon::ima
