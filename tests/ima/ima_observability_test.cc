// IMA coverage for the self-observability tables: imp_metrics,
// imp_stage_latency, imp_traces, plus the per-shard imp_monitor rows.
// All telemetry must be reachable over ordinary SQL (the paper's IMA
// thesis applied to the engine's own subsystems).
//
// The ImaObservabilityTest suite also runs under ThreadSanitizer in
// tier-1; RegistryHammerWithSqlReader is the cross-thread stress:
// N writers hit one counter handle while SQL scans of imp_metrics race
// them, asserting monotonic (never torn, never backwards) reads.

#include "ima/ima.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_history.h"
#include "engine/database.h"

namespace imon::ima {
namespace {

using engine::Database;
using engine::DatabaseOptions;
using engine::QueryResult;

class ImaObservabilityTest : public ::testing::Test {
 protected:
  ImaObservabilityTest() {
    DatabaseOptions options;
    options.plan_cache_capacity = 64;
    options.monitor.stats_sample_every = 0;
    db_ = std::make_unique<Database>(options);
    EXPECT_TRUE(RegisterImaTables(db_.get()).ok());
  }

  QueryResult MustExec(const std::string& sql) {
    auto r = db_->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? r.TakeValue() : QueryResult{};
  }

  void RunSmallWorkload() {
    MustExec("CREATE TABLE t (v INT PRIMARY KEY, w INT)");
    for (int i = 0; i < 20; ++i) {
      MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", 0)");
    }
    // The identical statement repeats so the plan cache records hits and
    // the buffer pool re-reads warm pages.
    for (int i = 0; i < 5; ++i) {
      MustExec("SELECT w FROM t WHERE v = 7");
    }
    MustExec("SELECT count(*) FROM t WHERE w = 0");
  }

  std::map<std::string, int64_t> MetricsByName() {
    std::map<std::string, int64_t> out;
    for (const Row& row : MustExec("SELECT name, value FROM imp_metrics").rows) {
      out[row[0].AsText()] = row[1].AsInt();
    }
    return out;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ImaObservabilityTest, NewTablesHaveExpectedSchemas) {
  // Projection by name over every new column; fails loudly on schema
  // drift. Valid regardless of IMON_METRICS (the tables always exist).
  MustExec("SELECT name, kind, value FROM imp_metrics");
  MustExec(
      "SELECT name, count, total_nanos, max_nanos, p50_nanos, p95_nanos, "
      "p99_nanos FROM imp_stage_latency");
  MustExec(
      "SELECT seq, hash, session_id, stage, start_micros, duration_nanos "
      "FROM imp_traces");
  MustExec(
      "SELECT shard, statements, workload_dropped, references_dropped, "
      "traces_dropped, monitor_nanos FROM imp_monitor");
}

TEST_F(ImaObservabilityTest, MetricsTableShowsLiveSubsystemCounters) {
#ifdef IMON_METRICS_DISABLED
  GTEST_SKIP() << "metrics layer compiled out";
#endif
  RunSmallWorkload();
  std::map<std::string, int64_t> metrics = MetricsByName();

  // Every attached subsystem registered its names at construction.
  EXPECT_TRUE(metrics.count("buffer_pool.hits"));
  EXPECT_TRUE(metrics.count("buffer_pool.misses"));
  EXPECT_TRUE(metrics.count("lock.acquisitions"));
  EXPECT_TRUE(metrics.count("plan_cache.stripe0.hits"));

  // ... and the workload left live, non-zero telemetry behind.
  EXPECT_GT(metrics["buffer_pool.hits"], 0);
  int64_t plan_hits = 0;
  int64_t plan_misses = 0;
  for (const auto& [name, value] : metrics) {
    if (name.rfind("plan_cache.", 0) == 0) {
      if (name.find(".hits") != std::string::npos) plan_hits += value;
      if (name.find(".misses") != std::string::npos) plan_misses += value;
    }
    EXPECT_GE(value, 0) << name;
  }
  EXPECT_GT(plan_hits, 0);   // repeated identical SELECT
  EXPECT_GT(plan_misses, 0); // first sight of every statement
}

TEST_F(ImaObservabilityTest, StageLatencyTableCoversEveryStage) {
#ifdef IMON_METRICS_DISABLED
  GTEST_SKIP() << "metrics layer compiled out";
#endif
  RunSmallWorkload();
  QueryResult r = MustExec(
      "SELECT name, count, max_nanos, p50_nanos, p95_nanos, p99_nanos "
      "FROM imp_stage_latency");

  std::map<std::string, std::vector<int64_t>> rows;
  for (const Row& row : r.rows) {
    rows[row[0].AsText()] = {row[1].AsInt(), row[2].AsInt(), row[3].AsInt(),
                             row[4].AsInt(), row[5].AsInt()};
  }
  const char* expected[] = {"stage.parse.nanos",    "stage.bind.nanos",
                            "stage.optimize.nanos", "stage.execute.nanos",
                            "stage.commit.nanos",   "statement.wallclock_nanos"};
  for (const char* name : expected) {
    ASSERT_TRUE(rows.count(name)) << name;
    const std::vector<int64_t>& v = rows[name];
    EXPECT_GT(v[0], 0) << name;         // count
    EXPECT_LE(v[2], v[3]) << name;      // p50 <= p95
    EXPECT_LE(v[3], v[4]) << name;      // p95 <= p99
    EXPECT_LE(v[4], v[1]) << name;      // p99 <= max
  }
  // Every committed statement is parsed and publishes a commit span;
  // DDL can bypass intermediate stages, so those counts only bound it.
  EXPECT_EQ(rows["stage.parse.nanos"][0], rows["stage.commit.nanos"][0]);
  EXPECT_EQ(rows["stage.parse.nanos"][0], rows["statement.wallclock_nanos"][0]);
  EXPECT_LE(rows["stage.execute.nanos"][0], rows["stage.parse.nanos"][0]);
}

TEST_F(ImaObservabilityTest, TracesTableExposesOrderedSpans) {
#ifdef IMON_METRICS_DISABLED
  GTEST_SKIP() << "metrics layer compiled out";
#endif
  RunSmallWorkload();
  QueryResult all = MustExec("SELECT seq, stage, duration_nanos FROM imp_traces");
  ASSERT_FALSE(all.rows.empty());

  int64_t prev_seq = 0;
  std::map<std::string, int64_t> per_stage;
  for (const Row& row : all.rows) {
    int64_t seq = row[0].AsInt();
    EXPECT_GT(seq, prev_seq);  // merged view strictly ascending
    prev_seq = seq;
    per_stage[row[1].AsText()] += 1;
    EXPECT_GE(row[2].AsInt(), 0);
  }
  for (const char* stage :
       {"parse", "bind", "optimize", "execute", "commit"}) {
    EXPECT_GT(per_stage[stage], 0) << stage;
  }

  // Seq predicate pushdown (SnapshotSince) agrees with a full scan.
  int64_t mid = all.rows[all.rows.size() / 2][0].AsInt();
  QueryResult tail = MustExec("SELECT seq FROM imp_traces WHERE seq > " +
                              std::to_string(mid));
  size_t expected = 0;
  for (const Row& row : all.rows) {
    if (row[0].AsInt() > mid) ++expected;
  }
  // The scans above also commit traces, so the tail can only have grown.
  EXPECT_GE(tail.rows.size(), expected);
  for (const Row& row : tail.rows) EXPECT_GT(row[0].AsInt(), mid);
}

TEST_F(ImaObservabilityTest, MonitorTableAccountsAllCommitsPerShard) {
  RunSmallWorkload();
  QueryResult r = MustExec(
      "SELECT shard, statements, workload_dropped FROM imp_monitor");
  ASSERT_EQ(r.rows.size(), db_->monitor()->shard_count());

  int64_t committed = 0;
  for (const Row& row : r.rows) {
    EXPECT_GE(row[1].AsInt(), 0);
    EXPECT_GE(row[2].AsInt(), 0);
    committed += row[1].AsInt();
  }
  // The snapshot ran inside the SELECT's own execution, before that
  // statement committed; everything else had already published.
  EXPECT_EQ(committed, db_->monitor()->statements_executed() - 1);
}

TEST_F(ImaObservabilityTest, RegistryHammerWithSqlReader) {
#ifdef IMON_METRICS_DISABLED
  GTEST_SKIP() << "metrics layer compiled out";
#endif
  metrics::Counter* counter = db_->metrics()->GetCounter("hammer.counter");
  constexpr int kThreads = 4;
  constexpr int64_t kIncrements = 20000;

  std::atomic<int> finished{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([counter, &finished] {
      for (int64_t i = 0; i < kIncrements; ++i) counter->Add();
      finished.fetch_add(1);
    });
  }

  // SQL reader racing the writers: per-cell monotonic adds mean a scan
  // can lag but can never observe a torn or decreasing value.
  int64_t last = 0;
  do {
    QueryResult r = MustExec(
        "SELECT value FROM imp_metrics WHERE name = 'hammer.counter'");
    ASSERT_EQ(r.rows.size(), 1u);
    int64_t v = r.rows[0][0].AsInt();
    EXPECT_GE(v, last);
    EXPECT_LE(v, kThreads * kIncrements);
    last = v;
  } while (finished.load(std::memory_order_acquire) < kThreads);
  for (auto& w : writers) w.join();

  QueryResult final_scan = MustExec(
      "SELECT value FROM imp_metrics WHERE name = 'hammer.counter'");
  ASSERT_EQ(final_scan.rows.size(), 1u);
  EXPECT_EQ(final_scan.rows[0][0].AsInt(), kThreads * kIncrements);
}

// Cross-thread stress for the flight recorder: writer threads hammer
// MetricsHistory::Record and full registry Sample sweeps while SQL
// readers scan imp_metrics_history concurrently. Tier-1 reruns this
// binary under TSan; the single-lock series map must keep every scan a
// coherent snapshot (monotonic per-tick counts, min <= last <= max).
TEST_F(ImaObservabilityTest, HistoryHammerWithSqlReaders) {
#ifdef IMON_METRICS_DISABLED
  GTEST_SKIP() << "metrics layer compiled out";
#endif
  metrics::MetricsHistory* history = db_->metrics_history();
  db_->metrics()->GetCounter("hammer.ctr")->Add(7);
  db_->metrics()->GetGauge("hammer.gau")->Set(13);

  constexpr int kWriters = 3;
  constexpr int64_t kPoints = 8000;
  std::atomic<int> finished{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([history, t, &finished, this] {
      const std::string series = "hammer.series." + std::to_string(t);
      for (int64_t i = 0; i < kPoints; ++i) {
        // Advancing timestamps wrap the raw ring mid-hammer; every 1024
        // points one full registry sweep races the dedicated series.
        history->Record(series, i & 255, i * 1000000);
        if ((i & 1023) == 0) {
          history->Sample(*db_->metrics(), i * 1000000);
        }
      }
      finished.fetch_add(1);
    });
  }

  do {
    QueryResult r = MustExec(
        "SELECT name, min, max, last, count FROM imp_metrics_history");
    for (const Row& row : r.rows) {
      EXPECT_LE(row[1].AsInt(), row[2].AsInt()) << row[0].AsText();
      EXPECT_LE(row[1].AsInt(), row[3].AsInt()) << row[0].AsText();
      EXPECT_LE(row[3].AsInt(), row[2].AsInt()) << row[0].AsText();
      EXPECT_GE(row[4].AsInt(), 1) << row[0].AsText();
    }
  } while (finished.load(std::memory_order_acquire) < kWriters);
  for (auto& w : writers) w.join();

  // Quiesced: each writer's series is fully present across the rings,
  // and the registry sweeps landed counter + gauge series too.
  for (int t = 0; t < kWriters; ++t) {
    QueryResult r = MustExec(
        "SELECT sum(count) FROM imp_metrics_history WHERE name = "
        "'hammer.series." +
        std::to_string(t) + "' AND resolution = 600");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].AsInt(), kPoints);
  }
  EXPECT_GE(MustExec("SELECT count(*) FROM imp_metrics_history WHERE "
                     "name = 'hammer.ctr'")
                .rows[0][0]
                .AsInt(),
            1);
  EXPECT_GE(MustExec("SELECT count(*) FROM imp_metrics_history WHERE "
                     "name = 'hammer.gau'")
                .rows[0][0]
                .AsInt(),
            1);
}

}  // namespace
}  // namespace imon::ima
