// Tests for the network server front end (DESIGN.md §14): option
// validation, the wire protocol's differential guarantee (remote results
// fingerprint-identical to embedded execution), malformed-frame
// robustness (no crash, no connection-slot leak), backpressure,
// fault-hook teardown, idle reaping, the imp_connections IMA table, and
// graceful drain with daemon-persisted workload state surviving a
// server restart.

#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "daemon/daemon.h"
#include "ima/ima.h"
#include "server/client.h"
#include "testing/fault_injector.h"
#include "testing/oracle.h"

namespace imon::server {
namespace {

using engine::Database;
using engine::DatabaseOptions;
using engine::QueryResult;

// ---------------------------------------------------------------------------
// Helpers

/// Spin until `pred` holds or `timeout` elapses; true when it held.
template <typename Pred>
bool EventuallyTrue(Pred pred, std::chrono::milliseconds timeout =
                                   std::chrono::milliseconds(5000)) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// A deliberately dumb TCP endpoint for sending byte garbage that the
/// well-behaved Client cannot produce.
class RawConn {
 public:
  ~RawConn() { Close(); }

  bool Dial(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Read whatever arrives until EOF or `timeout_ms` of silence.
  std::string ReadUntilClose(int timeout_ms = 2000) {
    std::string out;
    char buf[4096];
    while (true) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) break;
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

std::string HelloBytes(uint32_t version = kProtocolVersion) {
  std::string payload, out;
  AppendU32(&payload, version);
  AppendFrame(&out, FrameType::kHello, payload);
  return out;
}

std::string QueryBytes(std::string_view sql) {
  std::string out;
  AppendFrame(&out, FrameType::kQuery, sql);
  return out;
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : db_(MakeOptions()) {
    EXPECT_TRUE(ima::RegisterImaTables(&db_).ok());
  }

  ~ServerTest() override {
    if (server_) server_->Shutdown();
  }

  static DatabaseOptions MakeOptions() {
    DatabaseOptions o;
    o.plan_cache_capacity = 64;
    return o;
  }

  /// Start a server on an ephemeral port with test-friendly defaults;
  /// callers mutate `opts` first for special setups.
  void StartServer(ServerOptions opts = {}) {
    opts.port = 0;
    server_ = std::make_unique<Server>(&db_, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  QueryResult MustExec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? r.TakeValue() : QueryResult{};
  }

  Client MustConnect() {
    Client c;
    EXPECT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
    return c;
  }

  Database db_;
  std::unique_ptr<Server> server_;
};

// ---------------------------------------------------------------------------
// Satellite 1: option validation

TEST(ServerOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(ValidateServerOptions(ServerOptions{}).ok());
}

TEST(ServerOptionsTest, RejectsEachOutOfRangeField) {
  auto expect_rejected = [](ServerOptions o, const char* what) {
    Status s = ValidateServerOptions(o);
    EXPECT_FALSE(s.ok()) << what << " should have been rejected";
    EXPECT_TRUE(s.IsInvalidArgument()) << what << ": " << s;
  };

  ServerOptions o;
  o.host.clear();
  expect_rejected(o, "empty host");

  o = {};
  o.event_threads = 0;
  expect_rejected(o, "zero event threads");
  o.event_threads = 257;
  expect_rejected(o, "absurd event threads");

  o = {};
  o.executor_threads = 0;
  expect_rejected(o, "zero executor threads");
  o.executor_threads = 1025;
  expect_rejected(o, "absurd executor threads");

  o = {};
  o.queue_depth = 0;
  expect_rejected(o, "zero queue depth");
  o.queue_depth = (1u << 20) + 1;
  expect_rejected(o, "absurd queue depth");

  o = {};
  o.max_frame_bytes = 63;
  expect_rejected(o, "frame cap below floor");
  o.max_frame_bytes = (1u << 28) + 1;
  expect_rejected(o, "frame cap above ceiling");

  o = {};
  o.max_write_buffer_bytes = o.max_frame_bytes - 1;
  expect_rejected(o, "write buffer smaller than one frame");

  o = {};
  o.idle_timeout = std::chrono::milliseconds(-1);
  expect_rejected(o, "negative idle timeout");

  o = {};
  o.drain_timeout = std::chrono::milliseconds(-1);
  expect_rejected(o, "negative drain timeout");

  o = {};
  o.listen_backlog = 0;
  expect_rejected(o, "zero listen backlog");
}

TEST_F(ServerTest, StartRejectsInvalidOptions) {
  ServerOptions o;
  o.queue_depth = 0;
  Server bad(&db_, o);
  Status s = bad.Start();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(bad.running());
  bad.Shutdown();  // idempotent no-op after failed start
}

// ---------------------------------------------------------------------------
// Wire basics

TEST_F(ServerTest, PingEchoesAndQueriesRoundTrip) {
  StartServer();
  Client c = MustConnect();
  EXPECT_GT(c.conn_id(), 0);
  EXPECT_TRUE(c.Ping().ok());

  auto r = c.Execute("CREATE TABLE t (v INT)");
  ASSERT_TRUE(r.ok()) << r.status();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        c.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  r = c.Execute("SELECT v FROM t ORDER BY v");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->columns.size(), 1u);
  ASSERT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
  EXPECT_EQ(r->rows[4][0].AsInt(), 4);

  // An engine error comes back as a Status and leaves the connection
  // usable.
  auto bad = c.Execute("SELECT nope FROM missing");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(c.connected());
  EXPECT_TRUE(c.Ping().ok());
  c.Disconnect();
  EXPECT_TRUE(EventuallyTrue([&] { return server_->connections_open() == 0; }));
}

TEST_F(ServerTest, VersionMismatchIsRejectedWithErrorFrame) {
  StartServer();
  RawConn raw;
  ASSERT_TRUE(raw.Dial(server_->port()));
  ASSERT_TRUE(raw.Send(HelloBytes(/*version=*/99)));
  std::string reply = raw.ReadUntilClose();
  // One complete ERROR frame, then EOF (connection closed by server).
  ASSERT_GE(reply.size(), kFrameHeaderBytes);
  size_t off = 0;
  Frame frame;
  ASSERT_TRUE(ParseFrame(reply, &off, 1 << 20, &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kError);
  Status s = DecodeErrorFrame(frame.payload);
  EXPECT_EQ(s.code(), StatusCode::kNotSupported) << s;
  EXPECT_TRUE(EventuallyTrue([&] { return server_->connections_open() == 0; }));
}

// ---------------------------------------------------------------------------
// Differential guarantee: remote == embedded, byte for byte

TEST_F(ServerTest, RemoteResultsFingerprintIdenticalToEmbedded) {
  StartServer();
  MustExec("CREATE TABLE item (id INT PRIMARY KEY, grp INT, price DOUBLE, "
           "tag TEXT)");
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string tag = rng() % 5 == 0
                          ? "NULL"
                          : "'tag" + std::to_string(rng() % 8) + "'";
    MustExec("INSERT INTO item VALUES (" + std::to_string(i) + ", " +
             std::to_string(rng() % 10) + ", " +
             std::to_string(rng() % 1000) + ".5, " + tag + ")");
  }

  const std::vector<std::string> queries = {
      "SELECT * FROM item WHERE id = 17",
      "SELECT grp, price FROM item WHERE grp = 3 ORDER BY price, id",
      "SELECT count(*) FROM item",
      "SELECT tag FROM item WHERE id < 25 ORDER BY id",
      "SELECT id FROM item WHERE price > 500.0 ORDER BY id",
  };

  Client c = MustConnect();
  for (const auto& sql : queries) {
    auto remote = c.Execute(sql);
    auto local = db_.Execute(sql);
    ASSERT_TRUE(remote.ok()) << sql << " -> " << remote.status();
    ASSERT_TRUE(local.ok()) << sql << " -> " << local.status();
    QueryResult remote_qr;
    remote_qr.columns = remote->columns;
    remote_qr.rows = remote->rows;
    EXPECT_EQ(testing::Fingerprint(remote_qr), testing::Fingerprint(*local))
        << "remote and embedded results diverge for: " << sql;
  }
  c.Disconnect();
}

// ---------------------------------------------------------------------------
// Satellite 2: malformed frames never crash and never leak a slot

TEST_F(ServerTest, MalformedFramesNeverCrashOrLeakSlots) {
  ServerOptions opts;
  opts.max_frame_bytes = 4096;  // small cap so oversized frames are cheap
  StartServer(opts);
  MustExec("CREATE TABLE t (v INT)");

  std::mt19937_64 rng(0xF00D);
  auto rand_bytes = [&](size_t n) {
    std::string s(n, '\0');
    for (auto& ch : s) ch = static_cast<char>(rng() & 0xFF);
    return s;
  };

  for (int iter = 0; iter < 48; ++iter) {
    RawConn raw;
    ASSERT_TRUE(raw.Dial(server_->port())) << "iter " << iter;
    switch (iter % 6) {
      case 0: {  // truncated frame: header promises more than we send
        std::string hello = HelloBytes();
        raw.Send(hello.substr(0, kFrameHeaderBytes + 1));
        break;  // mid-frame disconnect on Close()
      }
      case 1: {  // oversized length prefix
        std::string out;
        uint32_t len = 64u << 20;
        out.append(reinterpret_cast<const char*>(&len), 4);
        out.push_back(static_cast<char>(FrameType::kQuery));
        raw.Send(out);
        raw.ReadUntilClose(500);
        break;
      }
      case 2: {  // garbage frame type
        std::string out;
        AppendFrame(&out, static_cast<FrameType>(0xEE), "junk");
        raw.Send(HelloBytes() + out);
        raw.ReadUntilClose(500);
        break;
      }
      case 3: {  // pure random bytes
        raw.Send(rand_bytes(1 + rng() % 512));
        raw.ReadUntilClose(200);
        break;
      }
      case 4: {  // QUERY without a handshake
        raw.Send(QueryBytes("SELECT v FROM t"));
        raw.ReadUntilClose(500);
        break;
      }
      case 5: {  // disconnect mid-query, response still in flight
        raw.Send(HelloBytes() + QueryBytes("SELECT v FROM t"));
        break;  // close without reading anything
      }
    }
    raw.Close();
  }

  EXPECT_TRUE(
      EventuallyTrue([&] { return server_->connections_open() == 0; }))
      << "leaked " << server_->connections_open() << " connection slots";

  // The server is still healthy for a well-behaved client.
  Client c = MustConnect();
  auto r = c.Execute("SELECT count(*) FROM t");
  EXPECT_TRUE(r.ok()) << r.status();
  c.Disconnect();
}

// ---------------------------------------------------------------------------
// Backpressure: a full request queue answers kResourceExhausted and the
// connection stays usable.

TEST_F(ServerTest, FullQueueRejectsWithResourceExhausted) {
  ServerOptions opts;
  opts.executor_threads = 1;
  opts.queue_depth = 1;
  StartServer(opts);
  MustExec("CREATE TABLE t (v INT)");

  // The test thread's implicit session takes the X lock on t, so remote
  // INSERTs pile up deterministically: the first blocks inside the lone
  // executor, the second fills the queue, the third must be rejected.
  MustExec("BEGIN");
  MustExec("INSERT INTO t VALUES (0)");

  auto waits_before = db_.lock_manager()->stats().total_waits;
  Client blocked = MustConnect();
  Client queued = MustConnect();
  Client rejected = MustConnect();

  std::atomic<bool> blocked_ok{false}, queued_ok{false};
  std::thread t1([&] {
    blocked_ok = blocked.Execute("INSERT INTO t VALUES (1)").ok();
  });
  ASSERT_TRUE(EventuallyTrue([&] {
    return db_.lock_manager()->stats().total_waits > waits_before;
  })) << "first remote INSERT never blocked on the table lock";

  std::thread t2([&] {
    queued_ok = queued.Execute("INSERT INTO t VALUES (2)").ok();
  });
  ASSERT_TRUE(EventuallyTrue([&] {
    for (const auto& row : server_->SnapshotConnections()) {
      if (row.conn_id == queued.conn_id() &&
          row.state == ConnState::kExecuting) {
        return true;
      }
    }
    return false;
  })) << "second remote INSERT never reached the queue";

  auto over = rejected.Execute("INSERT INTO t VALUES (3)");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted)
      << over.status();
  EXPECT_TRUE(rejected.connected()) << "a queue reject must not drop the "
                                       "connection";

  MustExec("COMMIT");
  t1.join();
  t2.join();
  EXPECT_TRUE(blocked_ok);
  EXPECT_TRUE(queued_ok);

  // The rejected connection retries successfully once pressure is gone.
  auto retry = rejected.Execute("INSERT INTO t VALUES (3)");
  EXPECT_TRUE(retry.ok()) << retry.status();
  auto count = rejected.Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 4);
}

// ---------------------------------------------------------------------------
// Fault hooks tear connections down through the normal path

TEST_F(ServerTest, FaultHooksDropConnectionsWithoutLeakingSlots) {
  imon::testing::FaultConfig cfg;
  cfg.fail_accept_at = 1;
  cfg.fail_net_read_at = 2;  // first read survives (HELLO), second dies
  imon::testing::FaultInjector injector(cfg);
  injector.Arm();

  ServerOptions opts;
  opts.fault_hooks.before_accept = [&] { return injector.BeforeAccept(); };
  opts.fault_hooks.before_read = [&] { return injector.BeforeNetRead(); };
  StartServer(opts);
  MustExec("CREATE TABLE t (v INT)");

  // Connection 1 is killed at the accept door: the TCP connect itself
  // succeeds, but the handshake never completes.
  {
    Client c;
    Status s = c.Connect("127.0.0.1", server_->port());
    EXPECT_FALSE(s.ok()) << "accept-faulted connection completed a handshake";
  }
  EXPECT_EQ(injector.counters().accept_faults, 1);

  // Connection 2 survives accept and HELLO, then its next socket read is
  // faulted; the server must close it via normal teardown.
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  auto r = c.Execute("SELECT 1");
  EXPECT_FALSE(r.ok()) << "read-faulted connection should have died";
  EXPECT_TRUE(
      EventuallyTrue([&] { return server_->connections_open() == 0; }))
      << "fault teardown leaked a connection slot";

  injector.Disarm();
  Client healthy = MustConnect();
  EXPECT_TRUE(healthy.Ping().ok());
}

// ---------------------------------------------------------------------------
// Idle connections are reaped

TEST_F(ServerTest, IdleConnectionsAreReaped) {
  ServerOptions opts;
  opts.idle_timeout = std::chrono::milliseconds(100);
  StartServer(opts);

  Client c = MustConnect();
  EXPECT_EQ(server_->connections_open(), 1);
  // No traffic: the reaper must close it well within the test deadline.
  EXPECT_TRUE(
      EventuallyTrue([&] { return server_->connections_open() == 0; }));
  // The client notices on its next use.
  EXPECT_FALSE(c.Ping().ok());
}

// ---------------------------------------------------------------------------
// Satellite 6: imp_connections

TEST_F(ServerTest, ImpConnectionsReportsLiveSessions) {
  StartServer();
  ASSERT_TRUE(RegisterConnectionsTable(&db_, server_.get()).ok());
  MustExec("CREATE TABLE t (v INT)");

  Client a = MustConnect();
  Client b = MustConnect();
  ASSERT_TRUE(a.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(a.Execute("SELECT v FROM t").ok());
  ASSERT_TRUE(b.Execute("SELECT v FROM t").ok());

  QueryResult r = MustExec(
      "SELECT conn_id, peer, state, requests, bytes_in, bytes_out "
      "FROM imp_connections ORDER BY conn_id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), a.conn_id());
  EXPECT_EQ(r.rows[1][0].AsInt(), b.conn_id());
  EXPECT_NE(r.rows[0][1].AsText().find("127.0.0.1:"), std::string::npos);
  EXPECT_EQ(r.rows[0][2].AsText(), "idle");
  EXPECT_EQ(r.rows[0][3].AsInt(), 2);  // a ran two statements
  EXPECT_EQ(r.rows[1][3].AsInt(), 1);
  EXPECT_GT(r.rows[0][4].AsInt(), 0);
  EXPECT_GT(r.rows[0][5].AsInt(), 0);

  a.Disconnect();
  ASSERT_TRUE(EventuallyTrue([&] {
    auto q = db_.Execute("SELECT count(*) FROM imp_connections");
    return q.ok() && q->rows[0][0].AsInt() == 1;
  })) << "closed connection still listed in imp_connections";
}

// ---------------------------------------------------------------------------
// Server metrics land in imp_metrics

TEST_F(ServerTest, ServerMetricsVisibleInImpMetrics) {
  StartServer();
  MustExec("CREATE TABLE t (v INT)");
  Client c = MustConnect();
  ASSERT_TRUE(c.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(c.Execute("SELECT v FROM t").ok());

  QueryResult r = MustExec(
      "SELECT name, value FROM imp_metrics WHERE name = "
      "'server.connections_accepted'");
#ifndef IMON_METRICS_DISABLED
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_GE(r.rows[0][1].AsInt(), 1);
  r = MustExec(
      "SELECT value FROM imp_metrics WHERE name = 'server.requests'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_GE(r.rows[0][0].AsInt(), 2);
#endif
}

// ---------------------------------------------------------------------------
// Satellite 3: graceful shutdown — in-flight queries complete, the
// daemon flush lands, and a restarted server resumes over consistent
// wl_* state.

TEST(ServerShutdownTest, DrainCompletesInFlightAndWorkloadStateSurvives) {
  DatabaseOptions mopts;
  mopts.name = "monitored";
  Database monitored(mopts);
  ASSERT_TRUE(ima::RegisterImaTables(&monitored).ok());
  DatabaseOptions wopts;
  wopts.name = "workload";
  wopts.monitor.enabled = false;
  Database workload_db(wopts);

  daemon::DaemonConfig dcfg;
  dcfg.polls_per_flush = 1;
  daemon::StorageDaemon storage_daemon(&monitored, &workload_db, dcfg);
  ASSERT_TRUE(storage_daemon.Initialize().ok());

  auto must = [&](Database* db, const std::string& sql) {
    auto r = db->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  };
  must(&monitored, "CREATE TABLE t (v INT)");

  auto template_executions = [&]() -> int64_t {
    auto r = workload_db.Execute(
        "SELECT template_text, executions FROM wl_templates");
    EXPECT_TRUE(r.ok()) << r.status();
    for (const Row& row : r->rows) {
      if (row[0].AsText().find("where v =") != std::string::npos) {
        return row[1].AsInt();
      }
    }
    return -1;
  };

  uint16_t old_port = 0;
  {
    Server server(&monitored, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    old_port = server.port();

    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE(
          c.Execute("SELECT v FROM t WHERE v = " + std::to_string(i)).ok());
    }

    // Pin the table lock so the fifth query is verifiably in flight when
    // Shutdown begins, then release it and require the drain to let the
    // query finish rather than killing it.
    must(&monitored, "BEGIN");
    must(&monitored, "INSERT INTO t VALUES (0)");
    auto waits_before = monitored.lock_manager()->stats().total_waits;
    std::atomic<bool> inflight_ok{false};
    std::thread qthread([&] {
      inflight_ok = c.Execute("SELECT v FROM t WHERE v = 5").ok();
    });
    ASSERT_TRUE(EventuallyTrue([&] {
      return monitored.lock_manager()->stats().total_waits > waits_before;
    }));

    std::thread shutdown_thread([&] { server.Shutdown(); });
    // Give the drain a moment to observe the in-flight request, then
    // unblock it.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    must(&monitored, "COMMIT");
    qthread.join();
    shutdown_thread.join();
    EXPECT_TRUE(inflight_ok)
        << "in-flight query was killed instead of drained";
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.connections_open(), 0);
  }

  // The imond shutdown sequence: final daemon flush after the drain.
  ASSERT_TRUE(storage_daemon.PollOnce().ok());
  ASSERT_TRUE(storage_daemon.FlushNow().ok());
  EXPECT_EQ(template_executions(), 5);

  // Restart: a new server over the same engine + workload DB. The
  // resumed daemon must extend the template counts, not double-count the
  // five executions already persisted (incarnation-keyed resume).
  {
    Server server(&monitored, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    EXPECT_NE(server.port(), 0);
    (void)old_port;  // ephemeral ports may or may not collide; irrelevant

    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
    for (int i = 6; i <= 8; ++i) {
      ASSERT_TRUE(
          c.Execute("SELECT v FROM t WHERE v = " + std::to_string(i)).ok());
    }
    ASSERT_TRUE(storage_daemon.PollOnce().ok());
    ASSERT_TRUE(storage_daemon.FlushNow().ok());
    EXPECT_EQ(template_executions(), 8)
        << "wl_templates inconsistent after server restart";
    c.Disconnect();
    server.Shutdown();
  }
}

// New queries during the drain are refused politely.
TEST_F(ServerTest, DrainRefusesNewQueriesThenCompletes) {
  StartServer();
  MustExec("CREATE TABLE t (v INT)");
  Client c = MustConnect();
  ASSERT_TRUE(c.Execute("INSERT INTO t VALUES (1)").ok());
  server_->Shutdown();
  EXPECT_FALSE(server_->running());
  // The socket is gone; the client learns on next use.
  EXPECT_FALSE(c.Execute("SELECT v FROM t").ok());
}

}  // namespace
}  // namespace imon::server
