// Adversarial inputs for the analyzer: empty monitoring data, zero-row
// and all-NULL tables, and rule thresholds probed exactly at their
// boundaries (the off-by-one cases the happy-path tests never hit).
//
// The threshold tests drive the rules through synthetic wl_* rows
// (inserted directly into the workload DB), so est/actual costs and
// page counts are controlled to the digit.

#include <gtest/gtest.h>

#include <string>

#include "analyzer/analyzer.h"
#include "daemon/daemon.h"
#include "ima/ima.h"

namespace imon::analyzer {
namespace {

using engine::Database;
using engine::DatabaseOptions;

class AnalyzerAdversarialTest : public ::testing::Test {
 protected:
  AnalyzerAdversarialTest()
      : clock_(1000000000),
        monitored_(MonitoredOptions()),
        workload_db_(WorkloadOptions()) {
    EXPECT_TRUE(ima::RegisterImaTables(&monitored_).ok());
    EXPECT_TRUE(daemon::CreateWorkloadSchema(&workload_db_).ok());
  }

  DatabaseOptions MonitoredOptions() {
    DatabaseOptions o;
    o.name = "monitored";
    o.clock = &clock_;
    return o;
  }
  DatabaseOptions WorkloadOptions() {
    DatabaseOptions o;
    o.name = "workload";
    o.monitor.enabled = false;
    o.clock = &clock_;
    return o;
  }

  void MustExec(Database* db, const std::string& sql) {
    auto r = db->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }

  /// Synthetic statement history: one wl_statements row plus one
  /// wl_workload execution with exact est/actual costs.
  void AddStatement(int64_t hash, const std::string& text, double est_cost,
                    double actual_cost) {
    MustExec(&workload_db_,
             "INSERT INTO wl_statements VALUES (1, " + std::to_string(hash) +
                 ", '" + text + "', 1, 0, 0, 0)");
    MustExec(&workload_db_,
             "INSERT INTO wl_workload VALUES (1, " + std::to_string(hash) +
                 ", " + std::to_string(hash) + ", 0, 0, 0, 0, 0, 0, 0.0, " +
                 "0.0, " + std::to_string(est_cost) + ", " +
                 std::to_string(actual_cost) + ", 0, 0, 0)");
  }

  /// Synthetic wl_tables snapshot row.
  void AddTableSnapshot(const std::string& name, const std::string& storage,
                        int64_t data_pages, int64_t overflow_pages) {
    MustExec(&workload_db_, "INSERT INTO wl_tables VALUES (1, 0, '" + name +
                                "', 1, '" + storage + "', " +
                                std::to_string(data_pages) + ", " +
                                std::to_string(overflow_pages) + ", 100)");
  }

  int CountKind(const AnalysisReport& report, RecommendationKind kind) {
    int n = 0;
    for (const auto& r : report.recommendations) {
      if (r.kind == kind) ++n;
    }
    return n;
  }

  SimulatedClock clock_;
  Database monitored_;
  Database workload_db_;
};

TEST_F(AnalyzerAdversarialTest, EmptyWorkloadDbYieldsEmptyReport) {
  Analyzer analyzer(&monitored_, &workload_db_);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->statements_analyzed, 0);
  EXPECT_EQ(report->cost_mismatch_statements, 0);
  EXPECT_TRUE(report->recommendations.empty());
  EXPECT_TRUE(report->cost_diagram.empty());
  EXPECT_TRUE(report->locks_diagram.empty());
  EXPECT_TRUE(report->trends.empty());
}

TEST_F(AnalyzerAdversarialTest, LiveModeOnFreshEngineYieldsCleanReport) {
  // No workload DB attached and nothing ever executed: the analyzer
  // reads the live IMA tables of an idle engine.
  Analyzer analyzer(&monitored_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->cost_mismatch_statements, 0);
}

TEST_F(AnalyzerAdversarialTest, ZeroRowAndAllNullTablesDoNotBreakAnalysis) {
  MustExec(&monitored_, "CREATE TABLE empty_t (a INT, b TEXT)");
  MustExec(&monitored_, "CREATE TABLE nulls_t (a INT, b TEXT)");
  for (int i = 0; i < 20; ++i) {
    MustExec(&monitored_, "INSERT INTO nulls_t VALUES (NULL, NULL)");
  }
  // Statistics over all-NULL and zero-row data.
  MustExec(&monitored_, "ANALYZE empty_t");
  MustExec(&monitored_, "ANALYZE nulls_t");
  // Reference them so the rules see the attributes.
  MustExec(&monitored_, "SELECT a FROM empty_t WHERE a = 1");
  MustExec(&monitored_, "SELECT b FROM nulls_t WHERE b IS NULL");
  MustExec(&monitored_, "SELECT count(*) FROM nulls_t WHERE a < 5");

  Analyzer analyzer(&monitored_, nullptr);  // live IMA mode
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->statements_analyzed, 3);
}

TEST_F(AnalyzerAdversarialTest, CostMismatchFiresExactlyAtTheFactor) {
  // Default factor 3.0: ratio == 3.0 must fire, 2.99 must not
  // (the rule skips only ratio < factor).
  AddStatement(101, "SELECT * FROM t_at", 100.0, 300.0);      // ratio 3.00
  AddStatement(102, "SELECT * FROM t_below", 100.0, 299.0);   // ratio 2.99
  AddStatement(103, "SELECT * FROM t_inverse", 300.0, 100.0); // ratio 3.00
  Analyzer analyzer(&monitored_, &workload_db_);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->statements_analyzed, 3);
  // Both directions of a 3x mismatch flag; the 2.99x one does not.
  EXPECT_EQ(report->cost_mismatch_statements, 2);
}

TEST_F(AnalyzerAdversarialTest, ZeroCostStatementsAreIgnoredByR1) {
  AddStatement(201, "SELECT * FROM t_zero_est", 0.0, 500.0);
  AddStatement(202, "SELECT * FROM t_zero_act", 500.0, 0.0);
  Analyzer analyzer(&monitored_, &workload_db_);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  // Division by a zero cost must be skipped, not crash or flag.
  EXPECT_EQ(report->cost_mismatch_statements, 0);
}

TEST_F(AnalyzerAdversarialTest, OverflowRuleFiresOnlyAboveThreshold) {
  // Default threshold 0.10 of main pages: the rule skips
  // overflow <= 0.1 * main, so exactly-at-threshold must NOT fire.
  AddTableSnapshot("t_at", "HEAP", 100, 10);      // exactly 10%: no
  AddTableSnapshot("t_above", "HEAP", 100, 11);   // 11%: yes
  AddTableSnapshot("t_zero_main", "HEAP", 0, 50); // no main pages: skip
  AddTableSnapshot("t_btree", "BTREE", 100, 90);  // wrong structure: skip
  Analyzer analyzer(&monitored_, &workload_db_);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(CountKind(*report, RecommendationKind::kModifyToBtree), 1);
  for (const auto& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kModifyToBtree) {
      EXPECT_EQ(rec.table, "t_above");
      EXPECT_EQ(rec.sql, "MODIFY t_above TO BTREE");
    }
  }
}

TEST_F(AnalyzerAdversarialTest, OverflowRuleEvaluatesLatestSnapshotOnly) {
  // The table degraded (50% overflow), then was compacted: only the
  // newest snapshot may be judged.
  AddTableSnapshot("t_healed", "HEAP", 100, 50);
  AddTableSnapshot("t_healed", "HEAP", 100, 5);
  Analyzer analyzer(&monitored_, &workload_db_);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(CountKind(*report, RecommendationKind::kModifyToBtree), 0);
}

}  // namespace
}  // namespace imon::analyzer
