// Recommendation round-trip: every statement the analyzer emits — the
// action SQL of all rule kinds (R1/R2 COLLECT STATISTICS, R3 MODIFY TO
// BTREE, R4 CREATE INDEX, R5 DROP INDEX) and every machine-readable
// inverse — must parse and execute against a real engine, and applying
// action + inverse must restore the original physical design. The
// closed-loop tuner executes these strings unattended, so "generates
// valid SQL" is a hard contract, not a formatting nicety.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "analyzer/analyzer.h"
#include "ima/ima.h"

namespace imon::analyzer {
namespace {

using engine::Database;
using engine::DatabaseOptions;

class RoundTripTest : public ::testing::Test {
 protected:
  RoundTripTest() : db_(DatabaseOptions{}) {
    EXPECT_TRUE(ima::RegisterImaTables(&db_).ok());
  }

  void MustExec(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }

  /// One workload that makes every rule fire at once:
  ///  * `fat`: 2 main pages + wide rows -> overflow -> R3;
  ///  * `t`: skewed point SELECTs on an unindexed column -> R4, and a
  ///    never-touched index -> R5;
  ///  * both tables are queried without ANALYZE first, so missing
  ///    histograms / cost mismatch produce R1/R2.
  void BuildAllRuleWorkload() {
    MustExec("CREATE TABLE fat (id INT, pad TEXT) WITH MAIN_PAGES = 2");
    for (int i = 0; i < 300; ++i) {
      MustExec("INSERT INTO fat VALUES (" + std::to_string(i) + ", '" +
               std::string(100, 'p') + "')");
    }
    MustExec("SELECT count(*) FROM fat WHERE id = 7");

    MustExec("CREATE TABLE t (a INT, b INT)");
    MustExec("CREATE INDEX never_used ON t (b)");
    for (int i = 0; i < 2000; ++i) {
      MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
               std::to_string(i % 400) + ")");
    }
    MustExec("ANALYZE t");
    for (int i = 0; i < 5; ++i) {
      MustExec("SELECT b FROM t WHERE a = 123");
    }
  }

  Database db_;
};

TEST_F(RoundTripTest, EveryRecommendationAndInverseExecutes) {
  BuildAllRuleWorkload();

  Analyzer analyzer(&db_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();

  std::set<RecommendationKind> kinds;
  for (const auto& rec : report->recommendations) kinds.insert(rec.kind);
  for (RecommendationKind expected :
       {RecommendationKind::kCollectStatistics,
        RecommendationKind::kModifyToBtree, RecommendationKind::kCreateIndex,
        RecommendationKind::kDropIndex}) {
    EXPECT_TRUE(kinds.count(expected))
        << "workload did not produce kind "
        << RecommendationKindName(expected) << "\n"
        << report->ToString();
  }

  // Physical design before any recommendation runs.
  std::map<std::string, catalog::StorageStructure> structures;
  for (const auto& table : db_.catalog()->ListTables()) {
    structures[table.name] = table.structure;
  }
  std::set<std::string> index_names;
  for (const auto& index : db_.catalog()->ListIndexes()) {
    index_names.insert(index.name);
  }

  for (const auto& rec : report->recommendations) {
    SCOPED_TRACE(RecommendationKindName(rec.kind) + std::string(": ") +
                 rec.sql);
    auto apply = db_.Execute(rec.sql);
    ASSERT_TRUE(apply.ok()) << rec.sql << " -> " << apply.status();
    if (rec.kind == RecommendationKind::kCollectStatistics) {
      EXPECT_TRUE(rec.inverse_sql.empty())
          << "ANALYZE has no inverse, got: " << rec.inverse_sql;
      continue;
    }
    ASSERT_FALSE(rec.inverse_sql.empty());
    auto undo = db_.Execute(rec.inverse_sql);
    ASSERT_TRUE(undo.ok()) << rec.inverse_sql << " -> " << undo.status();
  }

  // Action + inverse must be a no-op on the physical design.
  for (const auto& table : db_.catalog()->ListTables()) {
    auto it = structures.find(table.name);
    ASSERT_NE(it, structures.end()) << table.name;
    EXPECT_EQ(table.structure, it->second)
        << table.name << " structure not restored";
  }
  std::set<std::string> after;
  for (const auto& index : db_.catalog()->ListIndexes()) {
    after.insert(index.name);
  }
  EXPECT_EQ(after, index_names) << "index set not restored";
}

}  // namespace
}  // namespace imon::analyzer
