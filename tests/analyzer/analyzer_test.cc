#include "analyzer/analyzer.h"

#include <gtest/gtest.h>

#include "daemon/daemon.h"
#include "ima/ima.h"
#include "workload/nref.h"

#include <cmath>

namespace imon::analyzer {
namespace {

using engine::Database;
using engine::DatabaseOptions;

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() : db_(DatabaseOptions{}) {
    EXPECT_TRUE(ima::RegisterImaTables(&db_).ok());
  }

  void MustExec(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }

  Database db_;
};

TEST_F(AnalyzerTest, OverflowRuleRecommendsBtree) {
  MustExec("CREATE TABLE fat (id INT, pad TEXT) WITH MAIN_PAGES = 2");
  for (int i = 0; i < 300; ++i) {
    MustExec("INSERT INTO fat VALUES (" + std::to_string(i) + ", '" +
             std::string(100, 'p') + "')");
  }
  MustExec("SELECT count(*) FROM fat");  // reference it so it is monitored
  Analyzer analyzer(&db_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  bool found = false;
  for (const auto& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kModifyToBtree &&
        rec.table == "fat") {
      found = true;
      EXPECT_EQ(rec.sql, "MODIFY fat TO BTREE");
    }
  }
  EXPECT_TRUE(found) << report->ToString();
}

TEST_F(AnalyzerTest, MissingHistogramRuleFiresForReferencedColumns) {
  MustExec("CREATE TABLE t (a INT, b INT)");
  MustExec("INSERT INTO t VALUES (1, 2)");
  MustExec("SELECT a FROM t WHERE a = 1");
  Analyzer analyzer(&db_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  bool found = false;
  for (const auto& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kCollectStatistics &&
        rec.table == "t") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report->ToString();
}

TEST_F(AnalyzerTest, CostMismatchRuleCountsStatements) {
  MustExec("CREATE TABLE t (v INT)");
  for (int i = 0; i < 2000; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i % 4) + ")");
  }
  // Without statistics the default selectivity misestimates v = 1 badly
  // (25% actual vs 10% assumed) and the CPU/IO mix differs; run it a few
  // times so averages stabilize.
  for (int i = 0; i < 3; ++i) MustExec("SELECT count(*) FROM t WHERE v = 1");
  AnalyzerConfig config;
  config.cost_mismatch_factor = 1.5;
  Analyzer analyzer(&db_, nullptr, config);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->statements_analyzed, 1);
}

TEST_F(AnalyzerTest, IndexSelectionRecommendsUsefulIndex) {
  MustExec("CREATE TABLE t (a INT, b INT)");
  for (int i = 0; i < 4000; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i) + ")");
  }
  MustExec("ANALYZE t");
  // A frequent, highly selective predicate on an unindexed column.
  for (int i = 0; i < 5; ++i) {
    MustExec("SELECT a FROM t WHERE b = 123");
  }
  Analyzer analyzer(&db_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  const Recommendation* index_rec = nullptr;
  for (const auto& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kCreateIndex && rec.table == "t") {
      index_rec = &rec;
    }
  }
  ASSERT_NE(index_rec, nullptr) << report->ToString();
  EXPECT_GT(index_rec->estimated_benefit, 0);
  ASSERT_FALSE(index_rec->columns.empty());
  EXPECT_EQ(index_rec->columns[0], "b");
  // The cost diagram includes the improved virtual estimate.
  ASSERT_FALSE(report->cost_diagram.empty());
  bool improved = false;
  for (const auto& row : report->cost_diagram) {
    if (row.virtual_estimated_cost < row.estimated_cost) improved = true;
  }
  EXPECT_TRUE(improved);
}

TEST_F(AnalyzerTest, NoIndexRecommendedWhenAlreadyCovered) {
  MustExec("CREATE TABLE t (a INT, b INT)");
  for (int i = 0; i < 4000; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i) + ")");
  }
  MustExec("ANALYZE t");
  MustExec("CREATE INDEX t_b ON t (b)");
  for (int i = 0; i < 5; ++i) MustExec("SELECT a FROM t WHERE b = 123");
  Analyzer analyzer(&db_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  for (const auto& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kCreateIndex) {
      EXPECT_NE(rec.columns, std::vector<std::string>{"b"})
          << report->ToString();
    }
  }
}

TEST_F(AnalyzerTest, ApplyExecutesRecommendations) {
  MustExec("CREATE TABLE t (a INT, b INT) WITH MAIN_PAGES = 1");
  for (int i = 0; i < 3000; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i) + ")");
  }
  for (int i = 0; i < 3; ++i) MustExec("SELECT a FROM t WHERE b = 77");
  Analyzer analyzer(&db_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->recommendations.empty());
  auto applied = analyzer.Apply(report->recommendations);
  ASSERT_TRUE(applied.ok());
  EXPECT_GT(*applied, 0);
  // The overflow rule must have restructured the table.
  auto table = db_.catalog()->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->structure, catalog::StorageStructure::kBtree);
}

TEST_F(AnalyzerTest, WorksThroughWorkloadDb) {
  // Full pipeline: monitored engine -> daemon -> workload DB -> analyzer.
  DatabaseOptions wl_options;
  wl_options.monitor.enabled = false;
  Database workload_db(wl_options);
  daemon::DaemonConfig config;
  config.polls_per_flush = 1;
  daemon::StorageDaemon storage_daemon(&db_, &workload_db, config);
  ASSERT_TRUE(storage_daemon.Initialize().ok());

  MustExec("CREATE TABLE t (a INT, b INT) WITH MAIN_PAGES = 1");
  for (int i = 0; i < 3000; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i) + ")");
  }
  MustExec("ANALYZE t");
  for (int i = 0; i < 4; ++i) MustExec("SELECT a FROM t WHERE b = 55");
  ASSERT_TRUE(storage_daemon.PollOnce().ok());

  Analyzer analyzer(&db_, &workload_db);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->statements_analyzed, 0);
  bool has_index_rec = false;
  for (const auto& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kCreateIndex) has_index_rec = true;
  }
  EXPECT_TRUE(has_index_rec) << report->ToString();
}

TEST_F(AnalyzerTest, UnusedIndexRecommendedForDrop) {
  MustExec("CREATE TABLE t (a INT, b INT)");
  for (int i = 0; i < 200; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i) + ")");
  }
  MustExec("CREATE INDEX never_used ON t (b)");
  MustExec("CREATE UNIQUE INDEX unique_one ON t (a)");
  MustExec("SELECT count(*) FROM t");  // workload that uses no index
  Analyzer analyzer(&db_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  bool drop_unused = false;
  for (const auto& rec : report->recommendations) {
    if (rec.kind == RecommendationKind::kDropIndex) {
      EXPECT_EQ(rec.sql, "DROP INDEX never_used") << rec.sql;
      drop_unused = rec.index_name == "never_used";
      EXPECT_EQ(rec.table, "t");
      // The inverse recreates the index verbatim (tuner rollback path).
      EXPECT_EQ(rec.inverse_sql, "CREATE INDEX never_used ON t (b)");
      // Unique (constraint) indexes are never recommended for drop.
      EXPECT_NE(rec.index_name, "unique_one");
    }
  }
  EXPECT_TRUE(drop_unused) << report->ToString();
}

TEST_F(AnalyzerTest, TrendsFittedOverWorkloadHistory) {
  SimulatedClock clock(1000000);
  engine::DatabaseOptions mon_options;
  mon_options.clock = &clock;
  engine::Database monitored(mon_options);
  ASSERT_TRUE(ima::RegisterImaTables(&monitored).ok());
  engine::DatabaseOptions wl_options;
  wl_options.monitor.enabled = false;
  wl_options.clock = &clock;
  engine::Database workload_db(wl_options);
  daemon::DaemonConfig config;
  config.polls_per_flush = 1;
  daemon::StorageDaemon storage_daemon(&monitored, &workload_db, config,
                                       &clock);
  ASSERT_TRUE(storage_daemon.Initialize().ok());

  ASSERT_TRUE(monitored.Execute("CREATE TABLE grower (v TEXT) "
                                "WITH MAIN_PAGES = 1")
                  .ok());
  // Three "days": the table grows each day.
  for (int day = 0; day < 3; ++day) {
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(monitored
                      .Execute("INSERT INTO grower VALUES ('" +
                               std::string(60, 'g') + "')")
                      .ok());
    }
    ASSERT_TRUE(storage_daemon.PollOnce().ok());
    clock.AdvanceSeconds(24 * 3600);
  }

  Analyzer analyzer(&monitored, &workload_db);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  const TableTrend* grower = nullptr;
  for (const auto& t : report->trends) {
    if (t.table == "grower") grower = &t;
  }
  ASSERT_NE(grower, nullptr) << report->ToString();
  EXPECT_GT(grower->pages_per_day, 1.0);
  EXPECT_GT(grower->rows_per_day, 100.0);
  EXPECT_TRUE(std::isfinite(grower->days_to_double));
}

TEST_F(AnalyzerTest, LocksDiagramHasSeries) {
  db_.SampleSystemStats();
  db_.SampleSystemStats();
  db_.SampleSystemStats();
  Analyzer analyzer(&db_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->locks_diagram.size(), 3u);
}

TEST_F(AnalyzerTest, ReportIsHumanReadable) {
  MustExec("CREATE TABLE t (v INT) WITH MAIN_PAGES = 1");
  for (int i = 0; i < 1000; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  MustExec("SELECT count(*) FROM t WHERE v = 3");
  Analyzer analyzer(&db_, nullptr);
  auto report = analyzer.Analyze();
  ASSERT_TRUE(report.ok());
  std::string text = report->ToString();
  EXPECT_NE(text.find("Analyzer report"), std::string::npos);
  EXPECT_NE(text.find("Recommendations"), std::string::npos);
}

}  // namespace
}  // namespace imon::analyzer
