// Deterministic fault injection across the storage and daemon layers.
//
// Three layers of proof, all driven by one seed:
//  * FaultInjector itself: seed-deterministic decisions, exact one-shot
//    scheduling, no-op while disarmed.
//  * DiskManager faults: injected read/write failures surface as clean
//    Status through the whole engine (no crash, no lost committed data),
//    and everything recovers after disarming.
//  * StorageDaemon faults: a failed poll counts into poll_errors and
//    leaves the workload DB untouched; a flush killed mid-write leaves
//    no partial append (retry produces no duplicate seq); the monitor's
//    seq integrity holds under concurrent load with faults firing.
//
// Custom main(): `fault_test --seed=N --iters=K`. tier-1 reruns this
// binary under -DIMON_SANITIZE=thread (scripts/tier1.sh).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "daemon/daemon.h"
#include "engine/database.h"
#include "ima/ima.h"
#include "testing/fault_injector.h"

namespace imon::testing {
namespace {

uint64_t g_seed = 42;
int g_iters = 40;

using engine::Database;
using engine::DatabaseOptions;
using engine::QueryResult;

// ---- FaultInjector unit level -------------------------------------------

TEST(FaultInjectorTest, ProbabilisticDecisionsAreSeedDeterministic) {
  FaultConfig config;
  config.seed = g_seed;
  config.read_fault_prob = 0.3;
  FaultInjector a(config);
  FaultInjector b(config);
  a.Arm();
  b.Arm();
  storage::PageId pid{1, 2};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.BeforeRead(pid).ok(), b.BeforeRead(pid).ok()) << "call " << i;
  }
  auto ca = a.counters();
  EXPECT_EQ(ca.reads_seen, 200);
  EXPECT_GT(ca.read_faults, 0);
  EXPECT_LT(ca.read_faults, 200);
  EXPECT_EQ(ca.read_faults, b.counters().read_faults);

  // Reset() restores the exact decision stream.
  std::vector<bool> before;
  a.Reset();
  for (int i = 0; i < 50; ++i) before.push_back(a.BeforeRead(pid).ok());
  a.Reset();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.BeforeRead(pid).ok(), before[static_cast<size_t>(i)]) << i;
  }
}

TEST(FaultInjectorTest, ScheduledOneShotFiresExactlyOnce) {
  FaultConfig config;
  config.seed = g_seed;
  config.fail_write_at = 3;
  FaultInjector injector(config);
  injector.Arm();
  storage::PageId pid{0, 7};
  EXPECT_TRUE(injector.BeforeWrite(pid).ok());
  EXPECT_TRUE(injector.BeforeWrite(pid).ok());
  Status third = injector.BeforeWrite(pid);
  EXPECT_FALSE(third.ok());
  EXPECT_NE(third.ToString().find("injected"), std::string::npos);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(injector.BeforeWrite(pid).ok());
  EXPECT_EQ(injector.counters().write_faults, 1);
  EXPECT_EQ(injector.counters().writes_seen, 23);
}

TEST(FaultInjectorTest, DisarmedInjectorIsInvisible) {
  FaultConfig config;
  config.seed = g_seed;
  config.read_fault_prob = 1.0;
  config.write_fault_prob = 1.0;
  config.poll_fault_prob = 1.0;
  FaultInjector injector(config);  // never armed
  storage::PageId pid{0, 0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.BeforeRead(pid).ok());
    EXPECT_TRUE(injector.BeforeWrite(pid).ok());
    EXPECT_TRUE(injector.BeforePoll().ok());
  }
  auto c = injector.counters();
  EXPECT_EQ(c.reads_seen, 0);
  EXPECT_EQ(c.writes_seen, 0);
  EXPECT_EQ(c.polls_seen, 0);
}

// ---- Disk faults through the engine -------------------------------------

class DiskFaultTest : public ::testing::Test {
 protected:
  // A pool far smaller than the data forces physical I/O on every scan,
  // so the hook actually sees traffic (the engine only touches disk on a
  // miss or a dirty eviction).
  DatabaseOptions SmallPoolOptions() {
    DatabaseOptions o;
    o.buffer_pool_pages = 8;
    return o;
  }

  void PopulateWide(Database* db, int rows) {
    ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, "
                            "pad TEXT)")
                    .ok());
    std::string pad(120, 'x');
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                              ", " + std::to_string(i % 17) + ", '" + pad +
                              "')")
                      .ok());
    }
  }
};

TEST_F(DiskFaultTest, ReadFaultsSurfaceAsStatusAndRecover) {
  Database db(SmallPoolOptions());
  PopulateWide(&db, 600);

  FaultConfig config;
  config.seed = g_seed;
  config.read_fault_prob = 0.05;
  FaultInjector injector(config);
  db.disk()->set_fault_hook(&injector);
  injector.Arm();

  int failed = 0;
  for (int i = 0; i < g_iters; ++i) {
    auto r = db.Execute("SELECT count(*) FROM t WHERE v >= 0");
    if (!r.ok()) {
      ++failed;
      EXPECT_NE(r.status().ToString().find("injected"), std::string::npos)
          << r.status();
    }
  }
  EXPECT_GT(injector.counters().reads_seen, 0)
      << "pool too large: scans never reached the disk";
  EXPECT_GT(failed, 0) << "no injected read fault surfaced";
  EXPECT_LT(failed, g_iters) << "every scan failed; fault rate too high";

  // Disarmed, the database answers correctly: nothing was corrupted.
  injector.Disarm();
  auto r = db.Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows[0][0].AsInt(), 600);
  db.disk()->set_fault_hook(nullptr);
}

TEST_F(DiskFaultTest, WriteFaultsNeverLoseCommittedData) {
  Database db(SmallPoolOptions());
  PopulateWide(&db, 600);

  FaultConfig config;
  config.seed = g_seed;
  config.write_fault_prob = 0.05;
  FaultInjector injector(config);
  db.disk()->set_fault_hook(&injector);
  injector.Arm();

  // Inserts dirty the heap tail; the interleaved full scans evict those
  // dirty pages, so the armed hook sees real write-back traffic (inserts
  // alone stay pool-resident in this engine).
  std::string pad(120, 'y');
  int attempts = 300;
  int committed = 0;
  int failed_statements = 0;
  for (int i = 0; i < attempts; ++i) {
    auto r = db.Execute("INSERT INTO t VALUES (" + std::to_string(1000 + i) +
                        ", 1, '" + pad + "')");
    if (r.ok()) {
      ++committed;
    } else {
      ++failed_statements;
    }
    if (i % 5 == 4 && !db.Execute("SELECT count(*) FROM t").ok()) {
      ++failed_statements;
    }
  }
  injector.Disarm();
  EXPECT_GT(injector.counters().writes_seen, 0)
      << "no write-back ever reached the disk";
  EXPECT_GT(injector.counters().write_faults, 0);
  EXPECT_GT(failed_statements, 0) << "no injected write fault surfaced";
  EXPECT_GT(committed, 0);

  auto r = db.Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(r.ok()) << r.status();
  // Every acknowledged insert is present (a failed eviction write-back
  // keeps the dirty page in the pool — it must never drop rows); a
  // failed statement may at most leave its own row behind.
  EXPECT_GE(r->rows[0][0].AsInt(), 600 + committed);
  EXPECT_LE(r->rows[0][0].AsInt(), 600 + attempts);
  db.disk()->set_fault_hook(nullptr);
}

TEST_F(DiskFaultTest, ScheduledWriteFaultIsReproducible) {
  // The same seed + schedule kills the same statement in two fresh runs.
  // The engine is deterministic, so the 5th physical write lands on the
  // same eviction both times; the interleaved full-table UPDATEs dirty
  // far more pages than the pool holds, forcing write-backs to disk
  // (one-touch scan pages stay in the pool's probationary segment, so
  // the scan-resistant replacer recycles them during the statement).
  std::vector<int> first_failures;
  for (int run = 0; run < 2; ++run) {
    Database db(SmallPoolOptions());
    PopulateWide(&db, 600);
    FaultConfig config;
    config.seed = g_seed;
    config.fail_write_at = 5;
    FaultInjector injector(config);
    db.disk()->set_fault_hook(&injector);
    injector.Arm();
    std::vector<int> failures;  // failed statement indices, inserts + scans
    std::string pad(120, 'z');
    int stmt = 0;
    for (int i = 0; i < 60; ++i) {
      auto r = db.Execute("INSERT INTO t VALUES (" + std::to_string(2000 + i) +
                          ", 2, '" + pad + "')");
      if (!r.ok()) failures.push_back(stmt);
      ++stmt;
      if (i % 5 == 4) {
        if (!db.Execute("UPDATE t SET v = v + 1 WHERE v >= 0").ok()) {
          failures.push_back(stmt);
        }
        ++stmt;
      }
    }
    injector.Disarm();
    EXPECT_EQ(injector.counters().write_faults, 1);
    EXPECT_EQ(failures.size(), 1u) << "one-shot fault fails one statement";
    if (run == 0) {
      first_failures = failures;
    } else {
      EXPECT_EQ(failures, first_failures);
    }
    db.disk()->set_fault_hook(nullptr);
  }
}

// ---- Daemon under faults ------------------------------------------------

class DaemonFaultTest : public ::testing::Test {
 protected:
  DaemonFaultTest()
      : clock_(1000000000),
        monitored_(MonitoredOptions()),
        workload_db_(WorkloadOptions()) {
    EXPECT_TRUE(ima::RegisterImaTables(&monitored_).ok());
  }

  DatabaseOptions MonitoredOptions() {
    DatabaseOptions o;
    o.name = "monitored";
    o.clock = &clock_;
    return o;
  }
  DatabaseOptions WorkloadOptions() {
    DatabaseOptions o;
    o.name = "workload";
    o.monitor.enabled = false;
    o.clock = &clock_;
    // Small pool so flush appends reach the disk (and its fault hook):
    // the 7 wl_* tables alone fill more frames than this, forcing dirty
    // evictions during every flush.
    o.buffer_pool_pages = 4;
    return o;
  }
  daemon::DaemonConfig FastConfig() {
    daemon::DaemonConfig c;
    c.poll_interval = std::chrono::milliseconds(5);
    c.polls_per_flush = 2;
    c.retention = std::chrono::seconds(3600);
    c.flushes_per_purge = 1000;  // keep purge out of these tests' way
    return c;
  }

  QueryResult MustExec(Database* db, const std::string& sql) {
    auto r = db->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? r.TakeValue() : QueryResult{};
  }

  int64_t CountRows(const std::string& table) {
    QueryResult r = MustExec(&workload_db_, "SELECT count(*) FROM " + table);
    return r.rows[0][0].AsInt();
  }

  // All wl_workload seq values; the monitor allocates seq globally, so
  // duplicates mean a partial append was retried (data corruption).
  std::multiset<int64_t> WorkloadSeqs() {
    QueryResult r = MustExec(&workload_db_, "SELECT seq FROM wl_workload");
    std::multiset<int64_t> seqs;
    for (const Row& row : r.rows) seqs.insert(row[0].AsInt());
    return seqs;
  }

  SimulatedClock clock_;
  Database monitored_;
  Database workload_db_;
};

TEST_F(DaemonFaultTest, PollFaultCountsAndRecovers) {
  daemon::StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(),
                               &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  FaultConfig config;
  config.seed = g_seed;
  config.fail_poll_at = 2;
  FaultInjector injector(config);
  daemon.set_poll_fault_hook([&] { return injector.BeforePoll(); });
  injector.Arm();

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  MustExec(&monitored_, "SELECT v FROM t");

  ASSERT_TRUE(daemon.PollOnce().ok());  // cycle 1: buffers
  Status second = daemon.PollOnce();    // cycle 2: injected fault
  EXPECT_FALSE(second.ok());
  EXPECT_NE(second.ToString().find("injected poll fault"), std::string::npos);
  EXPECT_EQ(daemon.stats().poll_errors, 1);
  // The aborted cycle touched nothing: no flush happened.
  EXPECT_EQ(CountRows("wl_workload"), 0);

  // Recovery: the next cycle polls and flushes as if nothing happened.
  ASSERT_TRUE(daemon.PollOnce().ok());
  EXPECT_GE(CountRows("wl_workload"), 2);
  EXPECT_EQ(daemon.stats().poll_errors, 1);
  EXPECT_EQ(daemon.stats().polls, 2);  // faulted cycle does not count

  // Clean-up paths stay healthy after the fault.
  EXPECT_TRUE(daemon.FlushNow().ok());
  EXPECT_TRUE(daemon.PurgeExpired().ok());
}

TEST_F(DaemonFaultTest, FlushKilledMidWriteLeavesNoPartialAppend) {
  daemon::StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(),
                               &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  for (int i = 0; i < 30; ++i) {
    MustExec(&monitored_, "SELECT v FROM t WHERE v = " + std::to_string(i));
  }

  FaultConfig config;
  config.seed = g_seed;
  config.fail_write_at = 1;  // kill the first physical write of the flush
  FaultInjector injector(config);
  workload_db_.disk()->set_fault_hook(&injector);

  ASSERT_TRUE(daemon.PollOnce().ok());  // cycle 1: buffers only
  injector.Arm();
  Status flushing_poll = daemon.PollOnce();  // cycle 2: flush hits the fault
  EXPECT_FALSE(flushing_poll.ok()) << "flush should have hit the disk";
  EXPECT_EQ(daemon.stats().poll_errors, 1);
  injector.Disarm();
  EXPECT_EQ(injector.counters().write_faults, 1);

  // Retry: buffered rows land exactly once.
  ASSERT_TRUE(daemon.FlushNow().ok());
  std::multiset<int64_t> seqs = WorkloadSeqs();
  EXPECT_GE(seqs.size(), 31u);
  std::set<int64_t> unique(seqs.begin(), seqs.end());
  EXPECT_EQ(unique.size(), seqs.size()) << "duplicate seq: partial append";

  // A second flush has nothing left to write.
  ASSERT_TRUE(daemon.FlushNow().ok());
  EXPECT_EQ(WorkloadSeqs().size(), seqs.size());
  workload_db_.disk()->set_fault_hook(nullptr);
}

TEST_F(DaemonFaultTest, SeqIntegrityHoldsUnderConcurrentFaultyPolling) {
  daemon::StorageDaemon daemon(&monitored_, &workload_db_, FastConfig(),
                               &clock_);
  ASSERT_TRUE(daemon.Initialize().ok());

  FaultConfig config;
  config.seed = g_seed;
  config.poll_fault_prob = 0.3;
  FaultInjector injector(config);
  daemon.set_poll_fault_hook([&] { return injector.BeforePoll(); });
  injector.Arm();

  MustExec(&monitored_, "CREATE TABLE t (v INT)");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        monitored_
            .Execute("SELECT v FROM t WHERE v = " +
                     std::to_string(t * 1000 + i))
            .ok();
      }
    });
  }
  // Poll concurrently with the workload; some cycles fault, the rest
  // advance the cursors.
  for (int i = 0; i < 20; ++i) daemon.PollOnce().ok();
  for (auto& w : workers) w.join();
  injector.Disarm();

  // Drain: two clean polls guarantee a flush, then flush the remainder.
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.PollOnce().ok());
  ASSERT_TRUE(daemon.FlushNow().ok());

  std::multiset<int64_t> seqs = WorkloadSeqs();
  EXPECT_GE(seqs.size(), static_cast<size_t>(kThreads * kPerThread));
  std::set<int64_t> unique(seqs.begin(), seqs.end());
  EXPECT_EQ(unique.size(), seqs.size())
      << "duplicate seq under faulty concurrent polling";
  EXPECT_GT(daemon.stats().poll_errors, 0) << "no fault ever fired";
}

}  // namespace
}  // namespace imon::testing

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      imon::testing::g_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--iters=", 0) == 0) {
      imon::testing::g_iters = std::atoi(arg.c_str() + 8);
    }
  }
  return RUN_ALL_TESTS();
}
