// Randomized differential fuzzing: seeded workloads replayed across
// every physical-design axis, fingerprint-compared against baseline.
//
// Custom main(): `fuzz_test --seed=N --iters=K` reruns the sweep from
// any seed (a divergence report prints the seed that produced it).
// Under plain ctest the bounded defaults keep tier-1 fast; tier-1 also
// runs an explicit `fuzz_test --iters=25` sweep (scripts/tier1.sh) and
// leaves a machine-readable BENCH_fuzz.json behind.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "testing/oracle.h"
#include "testing/workload_gen.h"

namespace imon::testing {
namespace {

uint64_t g_seed = 1;
int g_iters = 5;

TEST(WorkloadGenTest, SameSeedSameWorkload) {
  GenConfig config;
  config.seed = g_seed;
  Workload a = GenerateWorkload(config);
  Workload b = GenerateWorkload(config);
  EXPECT_EQ(a.schema, b.schema);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.index_ddl, b.index_ddl);
  EXPECT_EQ(a.queries, b.queries);
}

TEST(WorkloadGenTest, DifferentSeedsDiffer) {
  GenConfig a_config, b_config;
  a_config.seed = g_seed;
  b_config.seed = g_seed + 1;
  Workload a = GenerateWorkload(a_config);
  Workload b = GenerateWorkload(b_config);
  EXPECT_NE(a.data, b.data);
}

TEST(WorkloadGenTest, ShapeMatchesConfig) {
  GenConfig config;
  config.seed = g_seed;
  config.mutations = 10;
  config.queries = 7;
  Workload w = GenerateWorkload(config);
  EXPECT_EQ(w.tables.size(), 2u);
  EXPECT_EQ(w.schema.size(), 2u);
  EXPECT_EQ(w.queries.size(), 7u);
  EXPECT_GE(w.index_ddl.size(), 1u);
  EXPECT_GT(w.data.size(), 10u);  // loads plus the mutation tail
}

// The tentpole sweep: `--iters` seeded workloads, each replayed across
// the full design grid; any divergence fails with a replayable report.
TEST(FuzzTest, DifferentialSweepFindsNoDivergence) {
  int64_t statements = 0;
  int64_t queries = 0;
  int64_t divergences = 0;
  for (int i = 0; i < g_iters; ++i) {
    GenConfig config;
    config.seed = g_seed + static_cast<uint64_t>(i);
    Workload workload = GenerateWorkload(config);
    DifferentialOracle oracle;
    auto report = oracle.Run(workload);
    ASSERT_TRUE(report.ok()) << report.status();
    statements += report->statements_executed;
    queries += report->queries_compared;
    divergences += static_cast<int64_t>(report->divergences.size());
    for (const Divergence& d : report->divergences) ADD_FAILURE() << d.Repro();
  }
  bench::JsonWriter json("fuzz");
  json.Metric("iterations", static_cast<double>(g_iters), "workloads");
  json.Metric("statements_executed", static_cast<double>(statements),
              "statements");
  json.Metric("queries_compared", static_cast<double>(queries), "queries");
  json.Metric("divergences", static_cast<double>(divergences), "divergences");
  json.Write();
}

// A deliberately broken design axis must be caught, shrunk, and reported
// reproducibly: the same seed yields byte-identical repro output.
TEST(FuzzTest, SabotagedAxisYieldsReproducibleShrunkReport) {
  GenConfig config;
  config.seed = g_seed + 13;
  config.queries = 4;
  Workload workload = GenerateWorkload(config);

  DifferentialOracle::Options options;
  options.sabotage_index_axis = true;
  options.max_shrink_replays = 200;

  std::string first_repro;
  for (int run = 0; run < 2; ++run) {
    DifferentialOracle oracle(options);
    auto report = oracle.Run(workload);
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_FALSE(report->divergences.empty());
    const Divergence& d = report->divergences.front();
    EXPECT_EQ(d.seed, workload.seed);
    EXPECT_NE(d.design.find("indexes"), std::string::npos);
    EXPECT_LE(d.shrunken_data.size(), workload.data.size());
    if (run == 0) {
      first_repro = d.Repro();
    } else {
      EXPECT_EQ(d.Repro(), first_repro) << "repro must be deterministic";
    }
  }
}

}  // namespace
}  // namespace imon::testing

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      imon::testing::g_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--iters=", 0) == 0) {
      imon::testing::g_iters = std::atoi(arg.c_str() + 8);
    }
  }
  return RUN_ALL_TESTS();
}
