// Differential workload-compression suite: every seeded fuzz workload
// is analyzed twice — once over the raw per-execution rows, once over
// the compressed per-template aggregates — and the two reports must
// produce the identical recommendation set (kind, table, index name,
// ordered attributes) for rules R1-R5. Compression that changes a
// tuning decision is a bug, not a space optimization.
//
// Custom main(): `compression_test --seed=N --iters=K` replays the
// sweep from any seed; tier-1 runs an explicit 100-workload sweep and
// leaves BENCH_compress_equiv.json behind.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "bench/bench_util.h"
#include "daemon/daemon.h"
#include "ima/ima.h"
#include "monitor/monitor.h"
#include "testing/fault_injector.h"
#include "testing/workload_gen.h"

namespace imon::testing {
namespace {

using analyzer::AnalysisReport;
using analyzer::Analyzer;
using analyzer::AnalyzerConfig;
using analyzer::RecommendationKindName;
using analyzer::WorkloadSource;
using engine::Database;
using engine::DatabaseOptions;

uint64_t g_seed = 1;
int g_iters = 5;

/// One full paper pipeline: monitored engine + IMA + storage daemon +
/// workload DB, on a simulated clock so replays are time-deterministic.
struct Pipeline {
  explicit Pipeline(daemon::DaemonConfig daemon_config = DefaultDaemonConfig())
      : clock(1000000),
        monitored(MonitoredOptions(&clock)),
        workload_db(WorkloadOptions(&clock)) {
    EXPECT_TRUE(ima::RegisterImaTables(&monitored).ok());
    storage_daemon = std::make_unique<daemon::StorageDaemon>(
        &monitored, &workload_db, daemon_config, &clock);
    EXPECT_TRUE(storage_daemon->Initialize().ok());
  }

  static daemon::DaemonConfig DefaultDaemonConfig() {
    daemon::DaemonConfig config;
    config.polls_per_flush = 1;
    return config;
  }
  static DatabaseOptions MonitoredOptions(const Clock* clock) {
    DatabaseOptions o;
    o.name = "monitored";
    o.clock = clock;
    return o;
  }
  static DatabaseOptions WorkloadOptions(const Clock* clock) {
    DatabaseOptions o;
    o.name = "workload";
    o.monitor.enabled = false;
    o.clock = clock;
    return o;
  }

  void Replay(const Workload& w) {
    for (const std::string& sql : w.schema) Must(sql);
    for (const std::string& sql : w.data) Must(sql);
    for (const std::string& sql : w.index_ddl) Must(sql);
    for (const std::string& sql : w.queries) Must(sql);
  }
  void Must(const std::string& sql) {
    auto r = monitored.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }

  SimulatedClock clock;
  Database monitored;
  Database workload_db;
  std::unique_ptr<daemon::StorageDaemon> storage_daemon;
};

/// The equivalence key of one recommendation: kind, table, index name
/// and the ordered attribute list. Reports agree iff these multisets do.
std::vector<std::string> RecommendationKeys(const AnalysisReport& report) {
  std::vector<std::string> keys;
  for (const auto& rec : report.recommendations) {
    std::string key = std::string(RecommendationKindName(rec.kind)) + "|" +
                      rec.table + "|" + rec.index_name + "|";
    for (const std::string& column : rec.columns) key += column + ",";
    keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Result<AnalysisReport> AnalyzeWith(Database* monitored, Database* workload_db,
                                   WorkloadSource source) {
  AnalyzerConfig config;
  config.workload_source = source;
  Analyzer analyzer(monitored, workload_db, config);
  return analyzer.Analyze();
}

// The tentpole sweep: `--iters` seeded workloads, each replayed into two
// identical pipelines and analyzed raw vs compressed. Any recommendation
// divergence fails with the seed and both reports.
TEST(CompressionDifferentialTest, RawAndTemplateAnalysesAgree) {
  int64_t raw_statements = 0;
  int64_t templates = 0;
  int64_t divergences = 0;
  for (int i = 0; i < g_iters; ++i) {
    GenConfig config;
    config.seed = g_seed + static_cast<uint64_t>(i);
    Workload workload = GenerateWorkload(config);

    // Two fresh pipelines: Analyze() runs ANALYZE on the engine before
    // index selection, so both modes must start from identical state.
    Pipeline raw_pipeline;
    Pipeline template_pipeline;
    raw_pipeline.Replay(workload);
    template_pipeline.Replay(workload);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(raw_pipeline.storage_daemon->PollOnce().ok());
    ASSERT_TRUE(template_pipeline.storage_daemon->PollOnce().ok());

    auto raw_report =
        AnalyzeWith(&raw_pipeline.monitored, &raw_pipeline.workload_db,
                    WorkloadSource::kRawRows);
    auto template_report = AnalyzeWith(&template_pipeline.monitored,
                                       &template_pipeline.workload_db,
                                       WorkloadSource::kTemplates);
    ASSERT_TRUE(raw_report.ok()) << raw_report.status();
    ASSERT_TRUE(template_report.ok()) << template_report.status();
    EXPECT_FALSE(raw_report->from_templates);
    EXPECT_TRUE(template_report->from_templates);

    EXPECT_EQ(raw_report->statements_analyzed,
              template_report->statements_analyzed)
        << "seed " << config.seed;
    EXPECT_EQ(raw_report->cost_mismatch_statements,
              template_report->cost_mismatch_statements)
        << "seed " << config.seed;
    auto raw_keys = RecommendationKeys(*raw_report);
    auto template_keys = RecommendationKeys(*template_report);
    if (raw_keys != template_keys) ++divergences;
    EXPECT_EQ(raw_keys, template_keys)
        << "seed " << config.seed << "\n--- raw rows ---\n"
        << raw_report->ToString() << "\n--- templates ---\n"
        << template_report->ToString();
    raw_statements += raw_report->statements_analyzed;
    templates += template_report->statements_analyzed;
  }
  bench::JsonWriter json("compress_equiv");
  json.Metric("iterations", static_cast<double>(g_iters), "workloads");
  json.Metric("templates_compared", static_cast<double>(templates),
              "templates");
  json.Metric("raw_groups_compared", static_cast<double>(raw_statements),
              "templates");
  json.Metric("divergences", static_cast<double>(divergences), "divergences");
  json.Write();
}

// Same equivalence over the live IMA tables (no workload DB attached):
// the analyzer reads imp_statements/imp_workload vs imp_templates.
TEST(CompressionDifferentialTest, LiveImaModeAgrees) {
  for (int i = 0; i < std::min(g_iters, 3); ++i) {
    GenConfig config;
    config.seed = g_seed + 1000 + static_cast<uint64_t>(i);
    Workload workload = GenerateWorkload(config);
    Pipeline raw_pipeline;
    Pipeline template_pipeline;
    raw_pipeline.Replay(workload);
    template_pipeline.Replay(workload);
    if (::testing::Test::HasFatalFailure()) return;

    auto raw_report = AnalyzeWith(&raw_pipeline.monitored, nullptr,
                                  WorkloadSource::kRawRows);
    auto template_report = AnalyzeWith(&template_pipeline.monitored, nullptr,
                                       WorkloadSource::kTemplates);
    ASSERT_TRUE(raw_report.ok()) << raw_report.status();
    ASSERT_TRUE(template_report.ok()) << template_report.status();
    EXPECT_EQ(raw_report->statements_analyzed,
              template_report->statements_analyzed)
        << "seed " << config.seed;
    EXPECT_EQ(RecommendationKeys(*raw_report),
              RecommendationKeys(*template_report))
        << "seed " << config.seed << "\n--- raw rows ---\n"
        << raw_report->ToString() << "\n--- templates ---\n"
        << template_report->ToString();
  }
}

// kAuto reads templates when the compressed table is populated, and
// falls back to raw rows for workload DBs filled before the template
// schema existed (or, as here, out-of-band with raw rows only).
TEST(CompressionDifferentialTest, AutoSourcePrefersTemplatesAndFallsBack) {
  Pipeline pipeline;
  pipeline.Must("CREATE TABLE t (a INT, b INT)");
  for (int i = 0; i < 30; ++i) {
    pipeline.Must("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                  std::to_string(i) + ")");
  }
  pipeline.Must("SELECT a FROM t WHERE b = 7");
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(pipeline.storage_daemon->PollOnce().ok());

  auto with_templates = AnalyzeWith(&pipeline.monitored, &pipeline.workload_db,
                                    WorkloadSource::kAuto);
  ASSERT_TRUE(with_templates.ok()) << with_templates.status();
  EXPECT_TRUE(with_templates->from_templates);
  EXPECT_GT(with_templates->statements_analyzed, 0);

  // A raw-only workload DB: wl_templates exists but stays empty.
  SimulatedClock clock(1000000);
  Database raw_only(Pipeline::WorkloadOptions(&clock));
  ASSERT_TRUE(daemon::CreateWorkloadSchema(&raw_only).ok());
  ASSERT_TRUE(raw_only
                  .Execute("INSERT INTO wl_statements VALUES "
                           "(1, 42, 'SELECT * FROM t_raw', 1, 0, 0, 0)")
                  .ok());
  ASSERT_TRUE(raw_only
                  .Execute("INSERT INTO wl_workload VALUES (1, 42, 42, 0, 0, "
                           "0, 0, 0, 0, 0.0, 0.0, 10.0, 40.0, 0, 0, 0)")
                  .ok());
  auto raw_fallback =
      AnalyzeWith(&pipeline.monitored, &raw_only, WorkloadSource::kAuto);
  ASSERT_TRUE(raw_fallback.ok()) << raw_fallback.status();
  EXPECT_FALSE(raw_fallback->from_templates);
  EXPECT_EQ(raw_fallback->statements_analyzed, 1);
}

/// Everything one flush-pressure scenario observes, for replay equality.
struct SamplingObservation {
  std::vector<std::pair<uint64_t, int64_t>> kept;  // (hash, start_micros)
  std::vector<std::string> templates;  // fingerprint|executions|sampled
  int64_t sample_rate_ppm = 0;
  int64_t sampled_out = 0;

  bool operator==(const SamplingObservation& other) const {
    return kept == other.kept && templates == other.templates &&
           sample_rate_ppm == other.sample_rate_ppm &&
           sampled_out == other.sampled_out;
  }
};

SamplingObservation RunFlushPressureScenario(uint64_t seed) {
  daemon::DaemonConfig daemon_config;
  daemon_config.polls_per_flush = 1;
  daemon_config.flush_pressure_rows = 64;
  daemon_config.min_sample_rate_ppm = 50000;
  Pipeline pipeline(daemon_config);

  // Polls fail while the injector is armed, so the monitor backlog grows
  // past the pressure threshold before the daemon can drain it.
  FaultConfig fault_config;
  fault_config.seed = seed;
  fault_config.poll_fault_prob = 1.0;
  FaultInjector injector(fault_config);
  pipeline.storage_daemon->set_poll_fault_hook(
      [&injector] { return injector.BeforePoll(); });
  injector.Arm();

  pipeline.Must("CREATE TABLE pressure (v INT, w INT)");
  for (int i = 0; i < 200; ++i) {
    pipeline.Must("INSERT INTO pressure VALUES (" + std::to_string(i) + ", " +
                  std::to_string(i % 7) + ")");
  }
  EXPECT_FALSE(pipeline.storage_daemon->PollOnce().ok());
  EXPECT_EQ(injector.counters().poll_faults, 1);
  injector.Disarm();
  // The recovering poll drains the whole backlog in one window: pressure
  // detected, sample rate lowered.
  EXPECT_TRUE(pipeline.storage_daemon->PollOnce().ok());
  EXPECT_LT(pipeline.storage_daemon->stats().sample_rate_ppm, 1000000);

  // Phase 2 executes under sampling: raw rows thin out, templates stay
  // exact.
  for (int i = 0; i < 300; ++i) {
    pipeline.Must("SELECT w FROM pressure WHERE v = " + std::to_string(i));
  }
  EXPECT_TRUE(pipeline.storage_daemon->PollOnce().ok());

  SamplingObservation observation;
  const monitor::Monitor* mon = pipeline.monitored.monitor();
  for (const auto& record : mon->SnapshotWorkload()) {
    observation.kept.emplace_back(record.hash, record.start_micros);
  }
  int64_t executions = 0;
  int64_t sampled = 0;
  for (const auto& tmpl : mon->SnapshotTemplates()) {
    EXPECT_GE(tmpl.executions, tmpl.sampled_count);
    executions += tmpl.executions;
    sampled += tmpl.sampled_count;
    observation.templates.push_back(std::to_string(tmpl.fingerprint) + "|" +
                                    std::to_string(tmpl.executions) + "|" +
                                    std::to_string(tmpl.sampled_count));
  }
  for (const auto& shard : mon->ShardStatsSnapshot()) {
    observation.sampled_out += shard.workload_sampled_out;
  }
  // Exact reconciliation: every sampled-out commit is still counted by
  // its template, and nothing else is.
  EXPECT_EQ(executions - sampled, observation.sampled_out);
  EXPECT_GT(observation.sampled_out, 0);
  observation.sample_rate_ppm =
      pipeline.storage_daemon->stats().sample_rate_ppm;

  // The same accounting must reconcile over SQL (imp_templates against
  // imp_monitor), the way a DBA would check it. Restore full capture
  // first: a kept commit bumps executions and sampled_count together
  // (gap-invariant), so the reconciliation queries no longer perturb the
  // numbers they read.
  pipeline.monitored.monitor()->SetWorkloadSampleRate(monitor::kSampleAllPpm);
  auto template_rows = pipeline.monitored.Execute(
      "SELECT executions, sampled_count FROM imp_templates");
  EXPECT_TRUE(template_rows.ok());
  int64_t sql_gap = 0;
  if (template_rows.ok()) {
    for (const Row& row : template_rows->rows) {
      sql_gap += row[0].AsInt() - row[1].AsInt();
    }
  }
  auto shard_rows = pipeline.monitored.Execute(
      "SELECT workload_sampled_out FROM imp_monitor");
  EXPECT_TRUE(shard_rows.ok());
  int64_t sql_sampled_out = 0;
  if (shard_rows.ok()) {
    for (const Row& row : shard_rows->rows) sql_sampled_out += row[0].AsInt();
  }
  EXPECT_EQ(sql_gap, sql_sampled_out);
  return observation;
}

// Satellite: the fault-driven pressure scenario is deterministic per
// seed — same kept raw rows, same template counters, same adapted rate —
// and its drop accounting reconciles exactly.
TEST(SamplingDeterminismTest, FlushPressureScenarioReproducesPerSeed) {
  SamplingObservation first = RunFlushPressureScenario(g_seed);
  if (::testing::Test::HasFatalFailure()) return;
  SamplingObservation second = RunFlushPressureScenario(g_seed);
  EXPECT_EQ(first, second);
  EXPECT_LT(first.kept.size(),
            static_cast<size_t>(first.sampled_out) + first.kept.size());
}

// Under sampling pressure the compressed analysis keeps seeing the whole
// workload: template mode still reports every distinct shape with exact
// execution counts, while raw mode visibly thins out.
TEST(SamplingDeterminismTest, TemplatesStayExactUnderSampling) {
  daemon::DaemonConfig daemon_config;
  daemon_config.polls_per_flush = 1;
  Pipeline pipeline(daemon_config);
  pipeline.Must("CREATE TABLE s (v INT)");
  pipeline.monitored.monitor()->SetWorkloadSampleRate(100000);  // 10%
  for (int i = 0; i < 200; ++i) {
    pipeline.Must("INSERT INTO s VALUES (" + std::to_string(i) + ")");
  }
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(pipeline.storage_daemon->PollOnce().ok());

  auto report = AnalyzeWith(&pipeline.monitored, &pipeline.workload_db,
                            WorkloadSource::kTemplates);
  ASSERT_TRUE(report.ok()) << report.status();
  // One INSERT template, 200 exact executions — regardless of sampling.
  bool found = false;
  auto rows = pipeline.workload_db.Execute(
      "SELECT template_text, executions, sampled_count FROM wl_templates");
  ASSERT_TRUE(rows.ok()) << rows.status();
  for (const Row& row : rows->rows) {
    if (row[0].AsText().rfind("insert into s", 0) == 0) {
      found = true;
      EXPECT_EQ(row[1].AsInt(), 200);
      EXPECT_LT(row[2].AsInt(), 200);  // raw rows were sampled out
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace imon::testing

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      imon::testing::g_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--iters=", 0) == 0) {
      imon::testing::g_iters = std::atoi(arg.c_str() + 8);
    }
  }
  return RUN_ALL_TESTS();
}
