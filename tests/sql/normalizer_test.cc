#include "sql/normalizer.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace imon::sql {
namespace {

TEST(NormalizerTest, ReplacesLiteralsWithPlaceholders) {
  auto n = NormalizeStatement("SELECT name FROM item WHERE id = 42");
  EXPECT_TRUE(n.normalized);
  EXPECT_EQ(n.template_text, "select name from item where id = ?");
  EXPECT_EQ(n.literal_count, 1u);
  EXPECT_NE(n.fingerprint, 0u);
}

TEST(NormalizerTest, SameTemplateForDifferentLiterals) {
  auto a = NormalizeStatement("SELECT * FROM item WHERE id = 1");
  auto b = NormalizeStatement("select *  from ITEM\nwhere id=99999");
  EXPECT_EQ(a.template_text, b.template_text);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(NormalizerTest, DistinctShapesGetDistinctFingerprints) {
  auto a = NormalizeStatement("SELECT * FROM item WHERE id = 1");
  auto b = NormalizeStatement("SELECT * FROM item WHERE id > 1");
  auto c = NormalizeStatement("SELECT * FROM sale WHERE id = 1");
  EXPECT_NE(a.fingerprint, b.fingerprint);
  EXPECT_NE(a.fingerprint, c.fingerprint);
  EXPECT_NE(b.fingerprint, c.fingerprint);
}

TEST(NormalizerTest, StringAndFloatLiterals) {
  auto n = NormalizeStatement(
      "SELECT * FROM item WHERE name = 'abc''d' AND price > 1.5e3");
  EXPECT_EQ(n.template_text,
            "select * from item where name = ? and price > ?");
  EXPECT_EQ(n.literal_count, 2u);
}

TEST(NormalizerTest, BooleanLiteralsNormalizedNullKept) {
  auto a = NormalizeStatement("SELECT * FROM t WHERE live = true");
  auto b = NormalizeStatement("SELECT * FROM t WHERE live = FALSE");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  auto c = NormalizeStatement("SELECT * FROM t WHERE x IS NULL");
  EXPECT_EQ(c.template_text, "select * from t where x is null");
  EXPECT_EQ(c.literal_count, 0u);
}

TEST(NormalizerTest, CollapsesInLists) {
  auto a = NormalizeStatement("SELECT * FROM item WHERE id IN (1, 2, 3)");
  auto b = NormalizeStatement("SELECT * FROM item WHERE id IN (7)");
  auto c =
      NormalizeStatement("SELECT * FROM item WHERE id IN (4, 5, 6, 7, 8)");
  EXPECT_EQ(a.template_text, "select * from item where id in ( ? )");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, c.fingerprint);
}

TEST(NormalizerTest, DoesNotCollapseNonLiteralInLists) {
  auto n = NormalizeStatement("SELECT * FROM item WHERE id IN (1, x)");
  EXPECT_EQ(n.template_text, "select * from item where id in ( ? , x )");
}

TEST(NormalizerTest, ValuesListKeepsArity) {
  auto a = NormalizeStatement("INSERT INTO t VALUES (1, 'a')");
  auto b = NormalizeStatement("INSERT INTO t VALUES (1, 'a', 2)");
  EXPECT_EQ(a.template_text, "insert into t values ( ? , ? )");
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(NormalizerTest, UnarySignFoldedBinaryKept) {
  auto a = NormalizeStatement("SELECT * FROM t WHERE x = -5");
  auto b = NormalizeStatement("SELECT * FROM t WHERE x = 5");
  EXPECT_EQ(a.template_text, b.template_text);
  auto c = NormalizeStatement("SELECT * FROM t WHERE x - 5 > 2");
  EXPECT_EQ(c.template_text, "select * from t where x - ? > ?");
  auto d = NormalizeStatement("SELECT * FROM t WHERE x = 5 - 3");
  EXPECT_EQ(d.template_text, "select * from t where x = ? - ?");
}

TEST(NormalizerTest, TrailingSemicolonAndCommentsDropped) {
  auto a = NormalizeStatement("SELECT * FROM t; -- trailing comment");
  auto b = NormalizeStatement("SELECT * FROM t");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(NormalizerTest, MalformedTextFallsBackToRawHash) {
  std::string bad = "SELECT 'unterminated";
  auto n = NormalizeStatement(bad);
  EXPECT_FALSE(n.normalized);
  EXPECT_EQ(n.template_text, bad);
  EXPECT_EQ(n.fingerprint, Mix64(HashStatement(bad)));
}

TEST(NormalizerTest, FingerprintIsMixedTemplateHash) {
  auto n = NormalizeStatement("SELECT * FROM t WHERE id = 3");
  EXPECT_EQ(n.fingerprint, Mix64(HashStatement(n.template_text)));
}

TEST(NormalizerTest, Mix64Avalanches) {
  // Adjacent inputs must not produce adjacent outputs (the raw FNV/combine
  // values feeding sampling decisions are weak in the low bits).
  EXPECT_NE(Mix64(1) ^ Mix64(2), 3u);
  EXPECT_NE(Mix64(0), 0u);
}

}  // namespace
}  // namespace imon::sql
