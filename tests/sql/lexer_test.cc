#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace imon::sql {
namespace {

std::vector<Token> MustTokenize(const std::string& input) {
  auto r = Tokenize(input);
  EXPECT_TRUE(r.ok()) << input << " -> " << r.status();
  return r.ok() ? r.TakeValue() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  for (const char* text : {"select", "SELECT", "SeLeCt"}) {
    auto tokens = MustTokenize(text);
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_TRUE(tokens[0].IsKeyword("select")) << text;
  }
}

TEST(LexerTest, IdentifiersLowercased) {
  auto tokens = MustTokenize("MyTable my_col2 _x");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "mytable");
  EXPECT_EQ(tokens[1].text, "my_col2");
  EXPECT_EQ(tokens[2].text, "_x");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  auto tokens = MustTokenize("42 3.25 1e3 2.5E-2 0.5");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.25);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.025);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 0.5);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = MustTokenize("'hello' 'it''s' ''");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].str_value, "hello");
  EXPECT_EQ(tokens[1].str_value, "it's");
  EXPECT_EQ(tokens[2].str_value, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = MustTokenize("<= >= <> != < > =");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_TRUE(tokens[0].IsSymbol("<="));
  EXPECT_TRUE(tokens[1].IsSymbol(">="));
  EXPECT_TRUE(tokens[2].IsSymbol("<>"));
  EXPECT_TRUE(tokens[3].IsSymbol("<>"));  // != normalizes to <>
  EXPECT_TRUE(tokens[4].IsSymbol("<"));
  EXPECT_TRUE(tokens[5].IsSymbol(">"));
  EXPECT_TRUE(tokens[6].IsSymbol("="));
}

TEST(LexerTest, LineCommentsSkipped) {
  auto tokens = MustTokenize("select -- everything here is ignored\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].int_value, 1);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Tokenize("select @foo").ok());
  EXPECT_FALSE(Tokenize("#").ok());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = MustTokenize("select x");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 7u);
}

}  // namespace
}  // namespace imon::sql
