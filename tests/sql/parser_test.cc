#include "sql/parser.h"

#include <gtest/gtest.h>

namespace imon::sql {
namespace {

StatementPtr MustParse(const std::string& sql) {
  auto r = Parse(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
  return r.ok() ? r.TakeValue() : nullptr;
}

template <typename T>
T* As(const StatementPtr& stmt) {
  return static_cast<T*>(stmt.get());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = MustParse("SELECT a, b FROM t WHERE a = 1");
  ASSERT_EQ(stmt->kind(), StatementKind::kSelect);
  auto* select = As<SelectStmt>(stmt);
  EXPECT_EQ(select->items.size(), 2u);
  ASSERT_EQ(select->from.size(), 1u);
  EXPECT_EQ(select->from[0].table, "t");
  ASSERT_NE(select->where, nullptr);
  EXPECT_EQ(select->where->ToString(), "(a = 1)");
}

TEST(ParserTest, SelectStarDistinctLimit) {
  auto stmt = MustParse("SELECT DISTINCT * FROM t LIMIT 10");
  auto* select = As<SelectStmt>(stmt);
  EXPECT_TRUE(select->distinct);
  EXPECT_TRUE(select->items[0].is_star);
  EXPECT_EQ(select->limit, 10);
}

TEST(ParserTest, JoinOnFoldsIntoWhere) {
  auto stmt = MustParse(
      "SELECT p.a FROM p JOIN o ON p.id = o.id JOIN q ON o.id = q.id "
      "WHERE p.a > 5");
  auto* select = As<SelectStmt>(stmt);
  ASSERT_EQ(select->from.size(), 3u);
  // WHERE holds the two ON conditions AND the explicit predicate.
  std::string where = select->where->ToString();
  EXPECT_NE(where.find("p.id = o.id"), std::string::npos);
  EXPECT_NE(where.find("o.id = q.id"), std::string::npos);
  EXPECT_NE(where.find("p.a > 5"), std::string::npos);
}

TEST(ParserTest, CommaJoinAndAliases) {
  auto stmt = MustParse("SELECT x.a FROM t1 AS x, t2 y WHERE x.a = y.b");
  auto* select = As<SelectStmt>(stmt);
  ASSERT_EQ(select->from.size(), 2u);
  EXPECT_EQ(select->from[0].EffectiveName(), "x");
  EXPECT_EQ(select->from[1].EffectiveName(), "y");
}

TEST(ParserTest, GroupByHavingOrderBy) {
  auto stmt = MustParse(
      "SELECT k, count(*) AS n FROM t GROUP BY k HAVING count(*) > 2 "
      "ORDER BY n DESC, k ASC LIMIT 5");
  auto* select = As<SelectStmt>(stmt);
  EXPECT_EQ(select->group_by.size(), 1u);
  ASSERT_NE(select->having, nullptr);
  ASSERT_EQ(select->order_by.size(), 2u);
  EXPECT_FALSE(select->order_by[0].ascending);
  EXPECT_TRUE(select->order_by[1].ascending);
  EXPECT_EQ(select->items[1].alias, "n");
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = MustParse("SELECT a FROM t WHERE a + 2 * 3 = 7 AND b = 1 OR "
                        "c = 2");
  auto* select = As<SelectStmt>(stmt);
  // OR binds loosest; * binds tighter than +.
  EXPECT_EQ(select->where->ToString(),
            "((((a + (2 * 3)) = 7) AND (b = 1)) OR (c = 2))");
}

TEST(ParserTest, BetweenInLikeIsNull) {
  auto stmt = MustParse(
      "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3) AND "
      "c LIKE 'ab%' AND d IS NOT NULL AND e NOT BETWEEN 0 AND 1");
  auto* select = As<SelectStmt>(stmt);
  std::string where = select->where->ToString();
  EXPECT_NE(where.find("a BETWEEN 1 AND 5"), std::string::npos);
  EXPECT_NE(where.find("b IN (1, 2, 3)"), std::string::npos);
  EXPECT_NE(where.find("c LIKE 'ab%'"), std::string::npos);
  EXPECT_NE(where.find("d IS NOT NULL"), std::string::npos);
  EXPECT_NE(where.find("e NOT BETWEEN 0 AND 1"), std::string::npos);
}

TEST(ParserTest, NegativeNumbersFoldIntoLiterals) {
  auto stmt = MustParse("SELECT a FROM t WHERE a > -5 AND b = -2.5");
  auto* select = As<SelectStmt>(stmt);
  EXPECT_EQ(select->where->ToString(), "((a > -5) AND (b = -2.5))");
}

TEST(ParserTest, InsertMultiRow) {
  auto stmt = MustParse(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y''z'), (3, NULL)");
  auto* insert = As<InsertStmt>(stmt);
  EXPECT_EQ(insert->table, "t");
  EXPECT_EQ(insert->columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(insert->rows.size(), 3u);
  EXPECT_EQ(insert->rows[1][1]->literal.AsText(), "y'z");
  EXPECT_TRUE(insert->rows[2][1]->literal.is_null());
}

TEST(ParserTest, UpdateAndDelete) {
  auto stmt = MustParse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3");
  auto* update = As<UpdateStmt>(stmt);
  EXPECT_EQ(update->assignments.size(), 2u);
  EXPECT_EQ(update->assignments[0].first, "a");

  stmt = MustParse("DELETE FROM t WHERE id < 10");
  auto* del = As<DeleteStmt>(stmt);
  EXPECT_EQ(del->table, "t");
  ASSERT_NE(del->where, nullptr);
}

TEST(ParserTest, CreateTableWithConstraints) {
  auto stmt = MustParse(
      "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(50) NOT NULL, "
      "score DOUBLE, PRIMARY KEY (id)) WITH MAIN_PAGES = 32");
  auto* create = As<CreateTableStmt>(stmt);
  ASSERT_EQ(create->columns.size(), 3u);
  EXPECT_TRUE(create->columns[0].primary_key);
  EXPECT_TRUE(create->columns[1].not_null);
  EXPECT_EQ(create->columns[1].type, TypeId::kText);
  EXPECT_EQ(create->primary_key, std::vector<std::string>{"id"});
  EXPECT_EQ(create->main_pages, 32u);
}

TEST(ParserTest, CreateTableIfNotExists) {
  auto stmt = MustParse("CREATE TABLE IF NOT EXISTS t (a INT)");
  EXPECT_TRUE(As<CreateTableStmt>(stmt)->if_not_exists);
}

TEST(ParserTest, IndexStatements) {
  auto stmt = MustParse("CREATE UNIQUE INDEX i ON t (a, b)");
  auto* create = As<CreateIndexStmt>(stmt);
  EXPECT_TRUE(create->unique);
  EXPECT_EQ(create->columns, (std::vector<std::string>{"a", "b"}));
  stmt = MustParse("DROP INDEX i");
  EXPECT_EQ(As<DropIndexStmt>(stmt)->index, "i");
}

TEST(ParserTest, ModifyAndAnalyze) {
  auto stmt = MustParse("MODIFY t TO BTREE");
  EXPECT_EQ(As<ModifyStmt>(stmt)->target, TargetStructure::kBtree);
  stmt = MustParse("MODIFY t TO HEAP");
  EXPECT_EQ(As<ModifyStmt>(stmt)->target, TargetStructure::kHeap);
  stmt = MustParse("MODIFY t TO HASH");
  EXPECT_EQ(As<ModifyStmt>(stmt)->target, TargetStructure::kHash);
  stmt = MustParse("ANALYZE t (a, b)");
  auto* analyze = As<AnalyzeStmt>(stmt);
  EXPECT_EQ(analyze->columns, (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, TriggerStatements) {
  auto stmt = MustParse(
      "CREATE TRIGGER watch AFTER INSERT ON stats WHEN sessions > 100 "
      "RAISE 'too many sessions'");
  auto* trigger = As<CreateTriggerStmt>(stmt);
  EXPECT_EQ(trigger->name, "watch");
  EXPECT_EQ(trigger->table, "stats");
  EXPECT_EQ(trigger->message, "too many sessions");
  stmt = MustParse("DROP TRIGGER watch");
  EXPECT_EQ(As<DropTriggerStmt>(stmt)->name, "watch");
}

TEST(ParserTest, TransactionStatements) {
  EXPECT_EQ(MustParse("BEGIN")->kind(), StatementKind::kBegin);
  EXPECT_EQ(MustParse("COMMIT")->kind(), StatementKind::kCommit);
  EXPECT_EQ(MustParse("ROLLBACK")->kind(), StatementKind::kRollback);
}

TEST(ParserTest, ExplainWrapsSelect) {
  auto stmt = MustParse("EXPLAIN SELECT a FROM t");
  auto* explain = As<ExplainStmt>(stmt);
  EXPECT_EQ(explain->inner->kind(), StatementKind::kSelect);
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_NE(MustParse("SELECT a FROM t;"), nullptr);
}

class ParserErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrorTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrorTest,
    ::testing::Values("", "SELECT", "SELECT FROM t", "SELECT a FROM",
                      "SELECT a FROM t WHERE", "SELECT a t",
                      "INSERT t VALUES (1)", "INSERT INTO t VALUES 1",
                      "UPDATE t a = 1", "DELETE t", "CREATE TABLE t",
                      "CREATE TABLE t (a)", "CREATE INDEX ON t (a)",
                      "MODIFY t TO CRACKED", "SELECT a FROM t LIMIT x",
                      "SELECT a FROM t GROUP k",
                      "SELECT a FROM t 123",
                      "SELECT a FROM t WHERE a IN ()",
                      "SELECT a FROM t WHERE a LIKE 5"));

TEST(ParseExpressionTest, StandaloneExpressions) {
  auto e = ParseExpression("sessions >= 100 AND deadlocks > 0");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kBinary);
  EXPECT_FALSE(ParseExpression("sessions >=").ok());
  EXPECT_FALSE(ParseExpression("1 2").ok());
}

}  // namespace
}  // namespace imon::sql
