# Empty dependencies file for imon_common.
# This may be replaced when dependencies are built.
