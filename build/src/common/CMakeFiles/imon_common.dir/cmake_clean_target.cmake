file(REMOVE_RECURSE
  "libimon_common.a"
)
