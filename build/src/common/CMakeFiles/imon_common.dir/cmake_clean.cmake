file(REMOVE_RECURSE
  "CMakeFiles/imon_common.dir/clock.cc.o"
  "CMakeFiles/imon_common.dir/clock.cc.o.d"
  "CMakeFiles/imon_common.dir/logging.cc.o"
  "CMakeFiles/imon_common.dir/logging.cc.o.d"
  "CMakeFiles/imon_common.dir/status.cc.o"
  "CMakeFiles/imon_common.dir/status.cc.o.d"
  "CMakeFiles/imon_common.dir/value.cc.o"
  "CMakeFiles/imon_common.dir/value.cc.o.d"
  "libimon_common.a"
  "libimon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
