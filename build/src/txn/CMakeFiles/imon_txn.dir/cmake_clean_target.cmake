file(REMOVE_RECURSE
  "libimon_txn.a"
)
