# Empty compiler generated dependencies file for imon_txn.
# This may be replaced when dependencies are built.
