file(REMOVE_RECURSE
  "CMakeFiles/imon_txn.dir/lock_manager.cc.o"
  "CMakeFiles/imon_txn.dir/lock_manager.cc.o.d"
  "libimon_txn.a"
  "libimon_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
