# Empty compiler generated dependencies file for imon_optimizer.
# This may be replaced when dependencies are built.
