file(REMOVE_RECURSE
  "libimon_optimizer.a"
)
