file(REMOVE_RECURSE
  "CMakeFiles/imon_optimizer.dir/binder.cc.o"
  "CMakeFiles/imon_optimizer.dir/binder.cc.o.d"
  "CMakeFiles/imon_optimizer.dir/cardinality.cc.o"
  "CMakeFiles/imon_optimizer.dir/cardinality.cc.o.d"
  "CMakeFiles/imon_optimizer.dir/plan.cc.o"
  "CMakeFiles/imon_optimizer.dir/plan.cc.o.d"
  "CMakeFiles/imon_optimizer.dir/planner.cc.o"
  "CMakeFiles/imon_optimizer.dir/planner.cc.o.d"
  "libimon_optimizer.a"
  "libimon_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
