# Empty compiler generated dependencies file for imon_daemon.
# This may be replaced when dependencies are built.
