# Empty dependencies file for imon_daemon.
# This may be replaced when dependencies are built.
