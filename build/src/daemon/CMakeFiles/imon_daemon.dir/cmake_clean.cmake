file(REMOVE_RECURSE
  "CMakeFiles/imon_daemon.dir/daemon.cc.o"
  "CMakeFiles/imon_daemon.dir/daemon.cc.o.d"
  "libimon_daemon.a"
  "libimon_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
