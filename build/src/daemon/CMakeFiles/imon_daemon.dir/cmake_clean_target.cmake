file(REMOVE_RECURSE
  "libimon_daemon.a"
)
