file(REMOVE_RECURSE
  "libimon_workload.a"
)
