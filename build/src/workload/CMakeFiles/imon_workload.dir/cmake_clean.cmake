file(REMOVE_RECURSE
  "CMakeFiles/imon_workload.dir/contention.cc.o"
  "CMakeFiles/imon_workload.dir/contention.cc.o.d"
  "CMakeFiles/imon_workload.dir/nref.cc.o"
  "CMakeFiles/imon_workload.dir/nref.cc.o.d"
  "libimon_workload.a"
  "libimon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
