# Empty compiler generated dependencies file for imon_workload.
# This may be replaced when dependencies are built.
