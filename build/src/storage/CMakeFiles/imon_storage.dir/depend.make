# Empty dependencies file for imon_storage.
# This may be replaced when dependencies are built.
