file(REMOVE_RECURSE
  "CMakeFiles/imon_storage.dir/btree.cc.o"
  "CMakeFiles/imon_storage.dir/btree.cc.o.d"
  "CMakeFiles/imon_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/imon_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/imon_storage.dir/disk_manager.cc.o"
  "CMakeFiles/imon_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/imon_storage.dir/hash_file.cc.o"
  "CMakeFiles/imon_storage.dir/hash_file.cc.o.d"
  "CMakeFiles/imon_storage.dir/heap_file.cc.o"
  "CMakeFiles/imon_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/imon_storage.dir/isam_file.cc.o"
  "CMakeFiles/imon_storage.dir/isam_file.cc.o.d"
  "CMakeFiles/imon_storage.dir/key_codec.cc.o"
  "CMakeFiles/imon_storage.dir/key_codec.cc.o.d"
  "CMakeFiles/imon_storage.dir/page.cc.o"
  "CMakeFiles/imon_storage.dir/page.cc.o.d"
  "libimon_storage.a"
  "libimon_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
