# Empty compiler generated dependencies file for imon_storage.
# This may be replaced when dependencies are built.
