
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/imon_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/imon_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/imon_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/imon_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/storage/CMakeFiles/imon_storage.dir/disk_manager.cc.o" "gcc" "src/storage/CMakeFiles/imon_storage.dir/disk_manager.cc.o.d"
  "/root/repo/src/storage/hash_file.cc" "src/storage/CMakeFiles/imon_storage.dir/hash_file.cc.o" "gcc" "src/storage/CMakeFiles/imon_storage.dir/hash_file.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/storage/CMakeFiles/imon_storage.dir/heap_file.cc.o" "gcc" "src/storage/CMakeFiles/imon_storage.dir/heap_file.cc.o.d"
  "/root/repo/src/storage/isam_file.cc" "src/storage/CMakeFiles/imon_storage.dir/isam_file.cc.o" "gcc" "src/storage/CMakeFiles/imon_storage.dir/isam_file.cc.o.d"
  "/root/repo/src/storage/key_codec.cc" "src/storage/CMakeFiles/imon_storage.dir/key_codec.cc.o" "gcc" "src/storage/CMakeFiles/imon_storage.dir/key_codec.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/imon_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/imon_storage.dir/page.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
