file(REMOVE_RECURSE
  "libimon_storage.a"
)
