# Empty compiler generated dependencies file for imon_catalog.
# This may be replaced when dependencies are built.
