file(REMOVE_RECURSE
  "libimon_catalog.a"
)
