file(REMOVE_RECURSE
  "CMakeFiles/imon_catalog.dir/catalog.cc.o"
  "CMakeFiles/imon_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/imon_catalog.dir/histogram.cc.o"
  "CMakeFiles/imon_catalog.dir/histogram.cc.o.d"
  "libimon_catalog.a"
  "libimon_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
