# Empty compiler generated dependencies file for imon_ima.
# This may be replaced when dependencies are built.
