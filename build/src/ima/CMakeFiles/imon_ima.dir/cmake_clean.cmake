file(REMOVE_RECURSE
  "CMakeFiles/imon_ima.dir/ima.cc.o"
  "CMakeFiles/imon_ima.dir/ima.cc.o.d"
  "libimon_ima.a"
  "libimon_ima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_ima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
