file(REMOVE_RECURSE
  "libimon_ima.a"
)
