# Empty dependencies file for imon_exec.
# This may be replaced when dependencies are built.
