file(REMOVE_RECURSE
  "libimon_exec.a"
)
