file(REMOVE_RECURSE
  "CMakeFiles/imon_exec.dir/executor.cc.o"
  "CMakeFiles/imon_exec.dir/executor.cc.o.d"
  "CMakeFiles/imon_exec.dir/expression_eval.cc.o"
  "CMakeFiles/imon_exec.dir/expression_eval.cc.o.d"
  "CMakeFiles/imon_exec.dir/storage_layer.cc.o"
  "CMakeFiles/imon_exec.dir/storage_layer.cc.o.d"
  "libimon_exec.a"
  "libimon_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
