file(REMOVE_RECURSE
  "CMakeFiles/imon_analyzer.dir/analyzer.cc.o"
  "CMakeFiles/imon_analyzer.dir/analyzer.cc.o.d"
  "libimon_analyzer.a"
  "libimon_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
