file(REMOVE_RECURSE
  "libimon_analyzer.a"
)
