# Empty compiler generated dependencies file for imon_analyzer.
# This may be replaced when dependencies are built.
