
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/analyzer.cc" "src/analyzer/CMakeFiles/imon_analyzer.dir/analyzer.cc.o" "gcc" "src/analyzer/CMakeFiles/imon_analyzer.dir/analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/imon_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/imon_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/imon_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/imon_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/imon_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/imon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/imon_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/imon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/imon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
