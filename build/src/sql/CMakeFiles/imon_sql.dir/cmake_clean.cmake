file(REMOVE_RECURSE
  "CMakeFiles/imon_sql.dir/ast.cc.o"
  "CMakeFiles/imon_sql.dir/ast.cc.o.d"
  "CMakeFiles/imon_sql.dir/lexer.cc.o"
  "CMakeFiles/imon_sql.dir/lexer.cc.o.d"
  "CMakeFiles/imon_sql.dir/parser.cc.o"
  "CMakeFiles/imon_sql.dir/parser.cc.o.d"
  "libimon_sql.a"
  "libimon_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
