file(REMOVE_RECURSE
  "libimon_sql.a"
)
