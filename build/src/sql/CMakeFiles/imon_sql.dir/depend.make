# Empty dependencies file for imon_sql.
# This may be replaced when dependencies are built.
