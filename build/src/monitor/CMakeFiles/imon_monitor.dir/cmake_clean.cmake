file(REMOVE_RECURSE
  "CMakeFiles/imon_monitor.dir/monitor.cc.o"
  "CMakeFiles/imon_monitor.dir/monitor.cc.o.d"
  "libimon_monitor.a"
  "libimon_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
