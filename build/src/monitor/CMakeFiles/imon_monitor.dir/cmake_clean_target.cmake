file(REMOVE_RECURSE
  "libimon_monitor.a"
)
