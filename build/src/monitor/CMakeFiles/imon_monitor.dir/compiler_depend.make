# Empty compiler generated dependencies file for imon_monitor.
# This may be replaced when dependencies are built.
