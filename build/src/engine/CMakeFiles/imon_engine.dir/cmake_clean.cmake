file(REMOVE_RECURSE
  "CMakeFiles/imon_engine.dir/database.cc.o"
  "CMakeFiles/imon_engine.dir/database.cc.o.d"
  "libimon_engine.a"
  "libimon_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
