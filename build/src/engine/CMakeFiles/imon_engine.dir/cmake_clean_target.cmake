file(REMOVE_RECURSE
  "libimon_engine.a"
)
