# Empty dependencies file for imon_engine.
# This may be replaced when dependencies are built.
