# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("catalog")
subdirs("sql")
subdirs("txn")
subdirs("optimizer")
subdirs("exec")
subdirs("monitor")
subdirs("engine")
subdirs("ima")
subdirs("daemon")
subdirs("analyzer")
subdirs("workload")
