file(REMOVE_RECURSE
  "CMakeFiles/fig6_costs.dir/bench/fig6_costs.cc.o"
  "CMakeFiles/fig6_costs.dir/bench/fig6_costs.cc.o.d"
  "bench/fig6_costs"
  "bench/fig6_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
