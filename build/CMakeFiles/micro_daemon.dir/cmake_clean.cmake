file(REMOVE_RECURSE
  "CMakeFiles/micro_daemon.dir/bench/micro_daemon.cc.o"
  "CMakeFiles/micro_daemon.dir/bench/micro_daemon.cc.o.d"
  "bench/micro_daemon"
  "bench/micro_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
