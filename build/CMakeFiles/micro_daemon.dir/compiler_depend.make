# Empty compiler generated dependencies file for micro_daemon.
# This may be replaced when dependencies are built.
