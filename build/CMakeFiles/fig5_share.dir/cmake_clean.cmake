file(REMOVE_RECURSE
  "CMakeFiles/fig5_share.dir/bench/fig5_share.cc.o"
  "CMakeFiles/fig5_share.dir/bench/fig5_share.cc.o.d"
  "bench/fig5_share"
  "bench/fig5_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
