# Empty dependencies file for fig5_share.
# This may be replaced when dependencies are built.
