file(REMOVE_RECURSE
  "CMakeFiles/fig8_locks.dir/bench/fig8_locks.cc.o"
  "CMakeFiles/fig8_locks.dir/bench/fig8_locks.cc.o.d"
  "bench/fig8_locks"
  "bench/fig8_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
