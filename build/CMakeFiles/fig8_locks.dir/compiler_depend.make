# Empty compiler generated dependencies file for fig8_locks.
# This may be replaced when dependencies are built.
