file(REMOVE_RECURSE
  "CMakeFiles/fig7_analyzer.dir/bench/fig7_analyzer.cc.o"
  "CMakeFiles/fig7_analyzer.dir/bench/fig7_analyzer.cc.o.d"
  "bench/fig7_analyzer"
  "bench/fig7_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
