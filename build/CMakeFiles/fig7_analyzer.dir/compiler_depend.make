# Empty compiler generated dependencies file for fig7_analyzer.
# This may be replaced when dependencies are built.
