file(REMOVE_RECURSE
  "CMakeFiles/micro_monitor.dir/bench/micro_monitor.cc.o"
  "CMakeFiles/micro_monitor.dir/bench/micro_monitor.cc.o.d"
  "bench/micro_monitor"
  "bench/micro_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
