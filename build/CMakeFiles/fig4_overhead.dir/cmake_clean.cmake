file(REMOVE_RECURSE
  "CMakeFiles/fig4_overhead.dir/bench/fig4_overhead.cc.o"
  "CMakeFiles/fig4_overhead.dir/bench/fig4_overhead.cc.o.d"
  "bench/fig4_overhead"
  "bench/fig4_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
