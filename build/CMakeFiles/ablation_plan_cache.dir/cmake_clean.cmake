file(REMOVE_RECURSE
  "CMakeFiles/ablation_plan_cache.dir/bench/ablation_plan_cache.cc.o"
  "CMakeFiles/ablation_plan_cache.dir/bench/ablation_plan_cache.cc.o.d"
  "bench/ablation_plan_cache"
  "bench/ablation_plan_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_plan_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
