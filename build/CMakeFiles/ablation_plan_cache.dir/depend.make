# Empty dependencies file for ablation_plan_cache.
# This may be replaced when dependencies are built.
