# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/ima_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
