file(REMOVE_RECURSE
  "CMakeFiles/ima_test.dir/ima/ima_test.cc.o"
  "CMakeFiles/ima_test.dir/ima/ima_test.cc.o.d"
  "ima_test"
  "ima_test.pdb"
  "ima_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ima_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
