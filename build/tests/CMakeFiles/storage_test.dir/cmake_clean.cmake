file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/storage/btree_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/btree_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/hash_file_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/hash_file_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/isam_file_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/isam_file_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/key_codec_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/key_codec_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/page_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/page_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
  "storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
