
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/btree_test.cc" "tests/CMakeFiles/storage_test.dir/storage/btree_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/btree_test.cc.o.d"
  "/root/repo/tests/storage/buffer_pool_test.cc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "/root/repo/tests/storage/hash_file_test.cc" "tests/CMakeFiles/storage_test.dir/storage/hash_file_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/hash_file_test.cc.o.d"
  "/root/repo/tests/storage/heap_file_test.cc" "tests/CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o.d"
  "/root/repo/tests/storage/isam_file_test.cc" "tests/CMakeFiles/storage_test.dir/storage/isam_file_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/isam_file_test.cc.o.d"
  "/root/repo/tests/storage/key_codec_test.cc" "tests/CMakeFiles/storage_test.dir/storage/key_codec_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/key_codec_test.cc.o.d"
  "/root/repo/tests/storage/page_test.cc" "tests/CMakeFiles/storage_test.dir/storage/page_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/page_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/imon_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/imon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
