# Empty dependencies file for imon_shell.
# This may be replaced when dependencies are built.
