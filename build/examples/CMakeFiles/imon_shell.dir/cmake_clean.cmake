file(REMOVE_RECURSE
  "CMakeFiles/imon_shell.dir/imon_shell.cpp.o"
  "CMakeFiles/imon_shell.dir/imon_shell.cpp.o.d"
  "imon_shell"
  "imon_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imon_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
