file(REMOVE_RECURSE
  "CMakeFiles/alerting_daemon.dir/alerting_daemon.cpp.o"
  "CMakeFiles/alerting_daemon.dir/alerting_daemon.cpp.o.d"
  "alerting_daemon"
  "alerting_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alerting_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
