# Empty compiler generated dependencies file for alerting_daemon.
# This may be replaced when dependencies are built.
