# Empty compiler generated dependencies file for autotune_advisor.
# This may be replaced when dependencies are built.
