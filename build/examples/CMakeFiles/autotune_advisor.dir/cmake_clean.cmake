file(REMOVE_RECURSE
  "CMakeFiles/autotune_advisor.dir/autotune_advisor.cpp.o"
  "CMakeFiles/autotune_advisor.dir/autotune_advisor.cpp.o.d"
  "autotune_advisor"
  "autotune_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
