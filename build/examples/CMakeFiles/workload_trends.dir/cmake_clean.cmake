file(REMOVE_RECURSE
  "CMakeFiles/workload_trends.dir/workload_trends.cpp.o"
  "CMakeFiles/workload_trends.dir/workload_trends.cpp.o.d"
  "workload_trends"
  "workload_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
