# Empty dependencies file for workload_trends.
# This may be replaced when dependencies are built.
