// Interactive SQL shell over a monitored engine — the closest thing to
// the paper's "terminal monitor". Lines are statements; the IMA virtual
// tables (imp_*) are queryable like any other table.
//
// Two modes:
//   ./examples/imon_shell                     embedded engine (default)
//   ./examples/imon_shell --connect host:port remote imond over the wire
//
//   imon> CREATE TABLE t (a INT, b TEXT)
//   imon> INSERT INTO t VALUES (1, 'hello')
//   imon> SELECT * FROM t
//   imon> SELECT query_text, frequency FROM imp_statements
//   imon> \stats       -- engine counters (server.* metrics when remote)
//   imon> \quit

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "engine/database.h"
#include "ima/ima.h"
#include "server/client.h"

using imon::Row;
using imon::engine::Database;
using imon::engine::DatabaseOptions;
using imon::engine::QueryResult;

namespace {

void PrintTable(const std::vector<std::string>& columns,
                const std::vector<Row>& rows, const std::string& message,
                double millis, double est_cost, double actual_cost) {
  if (!columns.empty()) {
    for (const auto& c : columns) std::printf("%-20s", c.c_str());
    std::printf("\n");
    for (const auto& c : columns) {
      (void)c;
      std::printf("%-20s", "------------------");
    }
    std::printf("\n");
    for (const auto& row : rows) {
      for (const auto& v : row) std::printf("%-20s", v.ToString().c_str());
      std::printf("\n");
    }
    std::printf("(%zu row%s", rows.size(), rows.size() == 1 ? "" : "s");
  } else {
    std::printf("%s", message.c_str());
    std::printf("(");
  }
  std::printf(", %.2f ms, est cost %.1f, actual %.1f)\n", millis, est_cost,
              actual_cost);
}

void PrintEngineStats(Database* db) {
  auto pool = db->buffer_pool()->stats();
  auto disk = db->disk()->stats();
  auto locks = db->lock_manager()->stats();
  auto counters = db->monitor()->counters();
  std::printf("statements executed:   %lld\n",
              static_cast<long long>(counters.statements_committed));
  std::printf("monitor time total:    %.2f ms\n",
              static_cast<double>(counters.total_monitor_nanos) / 1e6);
  std::printf("buffer pool:           %lld logical / %lld physical reads\n",
              static_cast<long long>(pool.logical_reads),
              static_cast<long long>(pool.physical_reads));
  std::printf("disk:                  %lld reads, %lld writes, %lld pages\n",
              static_cast<long long>(disk.physical_reads),
              static_cast<long long>(disk.physical_writes),
              static_cast<long long>(disk.pages_allocated));
  std::printf("locks:                 %lld acquired, %lld waits, %lld "
              "deadlocks\n",
              static_cast<long long>(locks.total_acquired),
              static_cast<long long>(locks.total_waits),
              static_cast<long long>(locks.total_deadlocks));
  std::printf("database size:         %.2f MB\n",
              static_cast<double>(db->DataSizeBytes()) / (1024 * 1024));
}

void PrintHelp(bool remote) {
  std::printf("  any SQL statement     executed on the engine\n");
  std::printf("  imp_* tables          the IMA monitoring views\n");
  std::printf("  \\stats                engine counters%s\n",
              remote ? " (server.* metrics over SQL)" : "");
  std::printf("  \\quit                 leave\n");
}

int RunRemote(const std::string& host, uint16_t port) {
  imon::server::Client client;
  auto s = client.Connect(host, port);
  if (!s.ok()) {
    std::fprintf(stderr, "imon_shell: cannot connect to %s:%u: %s\n",
                 host.c_str(), port, s.ToString().c_str());
    return 1;
  }
  std::printf("imon shell — connected to %s:%u (conn %lld). "
              "\\help for commands.\n",
              host.c_str(), port, static_cast<long long>(client.conn_id()));
  std::string line;
  while (true) {
    std::printf("imon> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q" || line == "exit") break;
    if (line == "\\help") {
      PrintHelp(/*remote=*/true);
      continue;
    }
    if (line == "\\stats") {
      // The remote engine's own counters, read over its SQL surface.
      line = "SELECT name, value FROM imp_metrics "
             "WHERE name LIKE 'server.%' ORDER BY name";
    }
    int64_t start = imon::MonotonicNanos();
    auto result = client.Execute(line);
    double millis = static_cast<double>(imon::MonotonicNanos() - start) / 1e6;
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      if (!client.connected()) {
        std::fprintf(stderr, "imon_shell: connection lost\n");
        return 1;
      }
      continue;
    }
    PrintTable(result->columns, result->rows, result->message, millis,
               result->estimated_cost, result->actual_cost);
  }
  client.Disconnect();
  return 0;
}

int RunEmbedded() {
  DatabaseOptions options;
  options.plan_cache_capacity = 256;
  Database db(options);
  if (!imon::ima::RegisterImaTables(&db).ok()) return 1;

  std::printf("imon shell — monitored SQL engine. \\help for commands.\n");
  std::string line;
  while (true) {
    std::printf("imon> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q" || line == "exit") break;
    if (line == "\\help") {
      PrintHelp(/*remote=*/false);
      continue;
    }
    if (line == "\\stats") {
      PrintEngineStats(&db);
      continue;
    }
    int64_t start = imon::MonotonicNanos();
    auto result = db.Execute(line);
    double millis =
        static_cast<double>(imon::MonotonicNanos() - start) / 1e6;
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintTable(result->columns, result->rows, result->message, millis,
               result->stats.estimated_cost, result->stats.actual_cost);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect", 9) == 0) {
      const char* target = nullptr;
      if (argv[i][9] == '=') {
        target = argv[i] + 10;
      } else if (i + 1 < argc) {
        target = argv[++i];
      }
      if (target == nullptr) {
        std::fprintf(stderr, "usage: imon_shell [--connect host:port]\n");
        return 1;
      }
      std::string spec(target);
      size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon + 1 >= spec.size()) {
        std::fprintf(stderr, "imon_shell: --connect expects host:port\n");
        return 1;
      }
      return RunRemote(spec.substr(0, colon),
                       static_cast<uint16_t>(
                           std::atoi(spec.c_str() + colon + 1)));
    }
  }
  return RunEmbedded();
}
