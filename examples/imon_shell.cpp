// Interactive SQL shell over a monitored engine — the closest thing to
// the paper's "terminal monitor". Lines are statements; the IMA virtual
// tables (imp_*) are queryable like any other table.
//
//   ./examples/imon_shell
//   imon> CREATE TABLE t (a INT, b TEXT)
//   imon> INSERT INTO t VALUES (1, 'hello')
//   imon> SELECT * FROM t
//   imon> SELECT query_text, frequency FROM imp_statements
//   imon> \stats       -- engine counters
//   imon> \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "engine/database.h"
#include "ima/ima.h"

using imon::engine::Database;
using imon::engine::DatabaseOptions;
using imon::engine::QueryResult;

namespace {

void PrintResult(const QueryResult& result, double millis) {
  if (!result.columns.empty()) {
    for (const auto& c : result.columns) std::printf("%-20s", c.c_str());
    std::printf("\n");
    for (const auto& c : result.columns) {
      (void)c;
      std::printf("%-20s", "------------------");
    }
    std::printf("\n");
    for (const auto& row : result.rows) {
      for (const auto& v : row) std::printf("%-20s", v.ToString().c_str());
      std::printf("\n");
    }
    std::printf("(%zu row%s", result.rows.size(),
                result.rows.size() == 1 ? "" : "s");
  } else {
    std::printf("%s", result.message.c_str());
    std::printf("(");
  }
  std::printf(", %.2f ms, est cost %.1f, actual %.1f)\n", millis,
              result.stats.estimated_cost, result.stats.actual_cost);
}

void PrintEngineStats(Database* db) {
  auto pool = db->buffer_pool()->stats();
  auto disk = db->disk()->stats();
  auto locks = db->lock_manager()->stats();
  auto counters = db->monitor()->counters();
  std::printf("statements executed:   %lld\n",
              static_cast<long long>(counters.statements_committed));
  std::printf("monitor time total:    %.2f ms\n",
              static_cast<double>(counters.total_monitor_nanos) / 1e6);
  std::printf("buffer pool:           %lld logical / %lld physical reads\n",
              static_cast<long long>(pool.logical_reads),
              static_cast<long long>(pool.physical_reads));
  std::printf("disk:                  %lld reads, %lld writes, %lld pages\n",
              static_cast<long long>(disk.physical_reads),
              static_cast<long long>(disk.physical_writes),
              static_cast<long long>(disk.pages_allocated));
  std::printf("locks:                 %lld acquired, %lld waits, %lld "
              "deadlocks\n",
              static_cast<long long>(locks.total_acquired),
              static_cast<long long>(locks.total_waits),
              static_cast<long long>(locks.total_deadlocks));
  std::printf("database size:         %.2f MB\n",
              static_cast<double>(db->DataSizeBytes()) / (1024 * 1024));
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.plan_cache_capacity = 256;
  Database db(options);
  if (!imon::ima::RegisterImaTables(&db).ok()) return 1;

  std::printf("imon shell — monitored SQL engine. \\help for commands.\n");
  std::string line;
  while (true) {
    std::printf("imon> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q" || line == "exit") break;
    if (line == "\\help") {
      std::printf("  any SQL statement     executed on the engine\n");
      std::printf("  imp_* tables          the IMA monitoring views\n");
      std::printf("  \\stats                engine counters\n");
      std::printf("  \\quit                 leave\n");
      continue;
    }
    if (line == "\\stats") {
      PrintEngineStats(&db);
      continue;
    }
    int64_t start = imon::MonotonicNanos();
    auto result = db.Execute(line);
    double millis =
        static_cast<double>(imon::MonotonicNanos() - start) / 1e6;
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result, millis);
  }
  return 0;
}
