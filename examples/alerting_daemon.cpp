// DBA alerting through the storage daemon (paper §IV-B): the daemon
// persists monitoring data into the workload DB, where ordinary triggers
// watch the appended rows and raise alerts — "the DBA can easily set up
// his own alerts by creating more triggers".
//
// This example installs two alert rules, provokes both conditions
// (a session spike and deadlocks), and prints the alerts as they fire.
//
//   ./examples/alerting_daemon

#include <cstdio>
#include <thread>

#include "daemon/daemon.h"
#include "ima/ima.h"
#include "workload/contention.h"

using namespace imon;

int main() {
  engine::Database db{engine::DatabaseOptions{}};
  if (!ima::RegisterImaTables(&db).ok()) return 1;

  engine::DatabaseOptions wl_options;
  wl_options.monitor.enabled = false;
  engine::Database workload_db(wl_options);

  daemon::DaemonConfig config;
  config.poll_interval = std::chrono::milliseconds(100);
  config.polls_per_flush = 1;  // alert promptly in this demo
  daemon::StorageDaemon storage_daemon(&db, &workload_db, config);
  if (!storage_daemon.Initialize().ok()) return 1;

  // Alert rules are plain triggers on the workload DB.
  if (!storage_daemon
           .AddAlertRule("too_many_sessions", "wl_statistics",
                         "current_sessions >= 5",
                         "session count reached the configured maximum")
           .ok()) {
    return 1;
  }
  if (!storage_daemon
           .AddAlertRule("deadlocks_seen", "wl_statistics", "deadlocks >= 1",
                         "deadlocks detected - check the locks diagram")
           .ok()) {
    return 1;
  }

  storage_daemon.SetAlertHandler([](const engine::AlertEvent& event) {
    std::printf("  [ALERT:%s] %s\n", event.trigger_name.c_str(),
                event.message.c_str());
  });
  storage_daemon.Start();

  std::printf("daemon running; provoking a session spike...\n");
  {
    std::vector<std::unique_ptr<engine::Session>> sessions;
    for (int i = 0; i < 6; ++i) sessions.push_back(db.CreateSession());
    db.SampleSystemStats();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }

  std::printf("provoking lock contention and deadlocks...\n");
  workload::ContentionConfig contention;
  contention.threads = 4;
  contention.transactions_per_thread = 30;
  contention.tables = 2;
  if (!workload::SetupContentionTables(&db, contention).ok()) return 1;
  auto result = workload::RunContentionWorkload(&db, contention);
  if (!result.ok()) return 1;
  std::printf("contention done: %lld committed, %lld deadlock aborts\n",
              static_cast<long long>(result->committed),
              static_cast<long long>(result->deadlock_aborts));
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  storage_daemon.Stop();
  auto stats = storage_daemon.stats();
  std::printf("\ndaemon: %lld polls, %lld flushes, %lld rows persisted, "
              "%lld alert(s) raised\n",
              static_cast<long long>(stats.polls),
              static_cast<long long>(stats.flushes),
              static_cast<long long>(stats.rows_written),
              static_cast<long long>(stats.alerts_raised));
  return 0;
}
