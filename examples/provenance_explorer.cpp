// Tuning-decision provenance, end to end: why does this index exist?
//
// The analyzer stamps every recommendation with a decision_id and the
// evidence (statement templates + aggregate costs) that justified it;
// the tuner freezes that evidence into wl_tuning_provenance and carries
// the decision_id through its whole lifecycle. One SQL join then
// answers the question every DBA asks of an autonomous tuner — "why
// does index X exist, and what happened to cost afterwards":
//
//   SELECT a.index_name, a.state, p.rule, t.template_text,
//          p.executions, a.baseline_cost, a.observed_cost
//   FROM imp_tuning_provenance p
//   JOIN imp_tuning_actions a ON p.action_id = a.action_id
//   JOIN imp_templates t ON p.fingerprint = t.fingerprint
//
//   ./examples/provenance_explorer

#include <cstdio>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "bench/bench_util.h"
#include "daemon/daemon.h"
#include "ima/ima.h"
#include "tuner/tuner.h"

using namespace imon;

int main() {
  SimulatedClock clock(1000000000);
  engine::DatabaseOptions options;
  options.clock = &clock;
  engine::Database db(options);
  if (!ima::RegisterImaTables(&db).ok()) return 1;

  engine::DatabaseOptions wl_options;
  wl_options.monitor.enabled = false;
  wl_options.clock = &clock;
  engine::Database workload_db(wl_options);

  daemon::DaemonConfig daemon_config;
  daemon_config.polls_per_flush = 1;
  daemon::StorageDaemon storage_daemon(&db, &workload_db, daemon_config,
                                       &clock);
  if (!storage_daemon.Initialize().ok()) return 1;

  tuner::TunerConfig tuner_config;
  tuner_config.verification_window = std::chrono::seconds(60);
  tuner_config.table_cooldown = std::chrono::seconds(0);
  tuner::TuningOrchestrator orch(&db, &workload_db, tuner_config, &clock);
  if (!orch.Initialize().ok()) return 1;
  if (!tuner::RegisterTuningActionsTable(&db, &orch).ok()) return 1;
  if (!tuner::RegisterTuningProvenanceTable(&db, &orch).ok()) return 1;
  storage_daemon.set_flush_listener([&] { (void)orch.Tick(); });

  // A skewed point-query workload makes the analyzer propose an index.
  std::printf("== workload: skewed point queries on t(b) ==\n");
  bench::MustExec(&db, "CREATE TABLE t (a INT, b INT)");
  for (int i = 0; i < 3000; ++i) {
    bench::MustExec(&db, "INSERT INTO t VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i % 500) + ")");
  }
  bench::MustExec(&db, "ANALYZE t");
  for (int i = 0; i < 10; ++i) {
    bench::MustExec(&db, "SELECT a FROM t WHERE b = 123");
  }

  analyzer::Analyzer an(&db, nullptr);
  auto report = an.Analyze();
  if (!report.ok()) return 1;
  std::vector<analyzer::Recommendation> index_recs;
  for (const auto& rec : report->recommendations) {
    if (rec.kind == analyzer::RecommendationKind::kCreateIndex) {
      index_recs.push_back(rec);
      std::printf("decision %lld (%s): %s — %zu evidence template(s)\n",
                  static_cast<long long>(rec.decision_id), rec.rule.c_str(),
                  rec.sql.c_str(), rec.evidence.size());
    }
  }
  if (index_recs.empty()) {
    std::printf("analyzer proposed no index; nothing to explain\n");
    return 1;
  }
  if (!orch.Submit(index_recs).ok()) return 1;

  if (!storage_daemon.PollOnce().ok()) return 1;  // flush -> tick -> apply
  for (int i = 0; i < 10; ++i) {
    bench::MustExec(&db, "SELECT a FROM t WHERE b = 321");
  }
  clock.AdvanceSeconds(61);
  if (!storage_daemon.PollOnce().ok()) return 1;  // flush -> tick -> verdict

  // The question, answered over plain SQL.
  std::printf("\n== why does this index exist? ==\n");
  auto r = db.Execute(
      "SELECT a.index_name, a.state, p.rule, t.template_text, "
      "p.executions, a.baseline_cost, a.observed_cost "
      "FROM imp_tuning_provenance p "
      "JOIN imp_tuning_actions a ON p.action_id = a.action_id "
      "JOIN imp_templates t ON p.fingerprint = t.fingerprint");
  if (!r.ok()) {
    std::fprintf(stderr, "provenance join failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  for (const Row& row : r->rows) {
    std::printf("index %s [%s]\n", row[0].AsText().c_str(),
                row[1].AsText().c_str());
    std::printf("  because rule %s fired on: %s (%lld executions)\n",
                row[2].AsText().c_str(), row[3].AsText().c_str(),
                static_cast<long long>(row[4].AsInt()));
    std::printf("  cost: baseline %.3f -> observed %.3f\n",
                row[5].AsDouble(), row[6].AsDouble());
  }
  if (r->rows.empty()) {
    std::printf("(no joined rows — check the provenance pipeline)\n");
    return 1;
  }
  return 0;
}
