// The full autonomous-tuning control loop from the paper, end to end:
//
//   monitor  -> the engine records the NREF-style workload as it runs
//   store    -> the storage daemon persists it into a workload DB
//   analyze  -> the analyzer scans the workload DB and recommends
//               statistics, B-Tree restructures and indexes (via what-if)
//   implement-> the recommendations are applied, and the same workload
//               is measured again
//
//   ./examples/autotune_advisor

#include <cstdio>

#include "analyzer/analyzer.h"
#include "bench/bench_util.h"
#include "daemon/daemon.h"
#include "ima/ima.h"
#include "workload/nref.h"

using namespace imon;

int main() {
  workload::NrefConfig nref;
  nref.proteins = 6000;
  nref.taxa = 200;
  nref.main_pages = 2;

  std::printf("setting up the NREF-like database (%lld proteins)...\n",
              static_cast<long long>(nref.proteins));
  engine::Database db{engine::DatabaseOptions{}};
  if (!ima::RegisterImaTables(&db).ok()) return 1;
  if (!workload::SetupNref(&db, nref).ok()) return 1;

  engine::DatabaseOptions wl_options;
  wl_options.monitor.enabled = false;
  engine::Database workload_db(wl_options);
  daemon::DaemonConfig daemon_config;
  daemon_config.polls_per_flush = 1;
  daemon::StorageDaemon storage_daemon(&db, &workload_db, daemon_config);
  if (!storage_daemon.Initialize().ok()) return 1;

  auto queries = workload::ComplexQuerySet(nref, 50);
  std::printf("running the 50-query workload under monitoring...\n");
  double before_s = bench::TimeStatements(&db, queries);
  if (!storage_daemon.PollOnce().ok()) return 1;

  std::printf("analyzing the recorded workload...\n\n");
  analyzer::Analyzer an(&db, &workload_db);
  auto report = an.Analyze();
  if (!report.ok()) {
    std::printf("analysis failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  std::printf("applying the recommendations...\n");
  auto applied = an.Apply(report->recommendations);
  if (!applied.ok()) return 1;
  std::printf("applied %lld change(s)\n\n", static_cast<long long>(*applied));

  // Re-run the workload with monitoring still on — the monitor keeps
  // watching the tuned system, closing the control loop.
  double after_s = bench::TimeStatements(&db, queries);
  std::printf("workload runtime: %.3f s before tuning, %.3f s after "
              "(%.0f%%)\n",
              before_s, after_s, 100.0 * after_s / before_s);
  std::printf("database size now: %.1f MB\n",
              static_cast<double>(db.DataSizeBytes()) / (1024 * 1024));
  return 0;
}
