// The closed-loop autonomous tuner, end to end — the paper's pipeline
// with the human taken out of the "implement" step:
//
//   monitor -> store -> analyze -> SUBMIT to the tuning orchestrator,
//   which revalidates, applies behind guardrails, verifies against a
//   baseline over an observation window, and keeps or rolls back.
//
// Two rounds are shown: a healthy one whose index is KEPT, and one
// where the workload shifts right after the apply so verification
// detects the regression and rolls the change back automatically.
// Everything is observable live over SQL:
//
//   SELECT * FROM imp_tuning_actions
//
//   ./examples/closed_loop_tuner

#include <cstdio>
#include <string>

#include "analyzer/analyzer.h"
#include "bench/bench_util.h"
#include "daemon/daemon.h"
#include "ima/ima.h"
#include "monitor/trace_export.h"
#include "tuner/tuner.h"

using namespace imon;

namespace {

void DumpActions(engine::Database* db) {
  auto r = db->Execute(
      "SELECT action_id, state, kind, action_sql, detail "
      "FROM imp_tuning_actions");
  if (!r.ok()) return;
  std::printf("  %-4s %-12s %-18s %s\n", "id", "state", "kind", "sql");
  for (const Row& row : r->rows) {
    std::printf("  %-4lld %-12s %-18s %s\n",
                static_cast<long long>(row[0].AsInt()),
                row[1].AsText().c_str(), row[2].AsText().c_str(),
                row[3].AsText().c_str());
    std::printf("       -> %s\n", row[4].AsText().c_str());
  }
}

}  // namespace

int main() {
  SimulatedClock clock(1000000000);
  engine::DatabaseOptions options;
  options.clock = &clock;
  engine::Database db(options);
  if (!ima::RegisterImaTables(&db).ok()) return 1;

  engine::DatabaseOptions wl_options;
  wl_options.monitor.enabled = false;
  wl_options.clock = &clock;
  engine::Database workload_db(wl_options);

  daemon::DaemonConfig daemon_config;
  daemon_config.polls_per_flush = 1;
  daemon::StorageDaemon storage_daemon(&db, &workload_db, daemon_config,
                                       &clock);
  if (!storage_daemon.Initialize().ok()) return 1;

  tuner::TunerConfig tuner_config;
  tuner_config.verification_window = std::chrono::seconds(60);
  tuner_config.table_cooldown = std::chrono::seconds(0);
  tuner::TuningOrchestrator orch(&db, &workload_db, tuner_config, &clock);
  if (!orch.Initialize().ok()) return 1;
  if (!tuner::RegisterTuningActionsTable(&db, &orch).ok()) return 1;
  // Embedded mode: the tuner ticks on the daemon's flush cadence.
  storage_daemon.set_flush_listener([&] { (void)orch.Tick(); });

  // ---- round 1: a skewed workload the tuner fixes and keeps ----------
  std::printf("== round 1: skewed point queries on t(b) ==\n");
  bench::MustExec(&db, "CREATE TABLE t (a INT, b INT)");
  for (int i = 0; i < 3000; ++i) {
    bench::MustExec(&db, "INSERT INTO t VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i % 500) + ")");
  }
  bench::MustExec(&db, "ANALYZE t");
  std::vector<std::string> probe(10, "SELECT a FROM t WHERE b = 123");
  double before_s = bench::TimeStatements(&db, probe);

  analyzer::Analyzer an(&db, nullptr);
  auto report = an.Analyze();
  if (!report.ok()) return 1;
  std::vector<analyzer::Recommendation> index_recs;
  for (const auto& rec : report->recommendations) {
    if (rec.kind == analyzer::RecommendationKind::kCreateIndex) {
      index_recs.push_back(rec);
    }
  }
  std::printf("analyzer proposed %zu index(es)\n", index_recs.size());
  if (!orch.Submit(index_recs).ok()) return 1;

  if (!storage_daemon.PollOnce().ok()) return 1;  // flush -> tick -> apply
  double after_s = bench::TimeStatements(&db, probe);
  clock.AdvanceSeconds(61);
  if (!storage_daemon.PollOnce().ok()) return 1;  // flush -> tick -> verdict

  std::printf("probe workload: %.3fs before, %.3fs after (%.1fx)\n",
              before_s, after_s, after_s > 0 ? before_s / after_s : 0);
  DumpActions(&db);

  // ---- round 2: a regression the tuner rolls back --------------------
  std::printf("\n== round 2: post-apply regression -> rollback ==\n");
  // Point queries on t(a) make an index on it look worthwhile...
  for (int i = 0; i < 10; ++i) {
    bench::MustExec(&db, "SELECT b FROM t WHERE a = 42");
  }
  analyzer::Recommendation manual;
  manual.kind = analyzer::RecommendationKind::kCreateIndex;
  manual.table = "t";
  manual.columns = {"a"};
  manual.index_name = "idx_t_a";
  manual.sql = "CREATE INDEX idx_t_a ON t (a)";
  manual.inverse_sql = "DROP INDEX idx_t_a";
  manual.estimated_benefit = 50;
  manual.reason = "manually injected for the demo";
  if (!orch.Submit({manual}).ok()) return 1;
  if (!storage_daemon.PollOnce().ok()) return 1;  // apply idx_t_a

  // ...but the workload shifts right after the apply: the table doubles
  // and range scans dominate the verification window.
  for (int i = 0; i < 3000; ++i) {
    bench::MustExec(&db, "INSERT INTO t VALUES (" + std::to_string(i) +
                             ", 77)");
  }
  for (int i = 0; i < 10; ++i) {
    bench::MustExec(&db, "SELECT b FROM t WHERE a < 999999");
  }
  clock.AdvanceSeconds(61);
  if (!storage_daemon.PollOnce().ok()) return 1;  // verdict: rollback

  DumpActions(&db);
  auto stats = orch.stats();
  std::printf("\ntuner: %lld applied, %lld kept, %lld rolled back, "
              "%lld rejected (audit rows in wl_tuning_actions)\n",
              static_cast<long long>(stats.applied),
              static_cast<long long>(stats.kept),
              static_cast<long long>(stats.rolled_back),
              static_cast<long long>(stats.rejected));

  // Statement spans plus the tuner lifecycle on its own track — load in
  // chrome://tracing or Perfetto; each span carries its decision_id.
  auto spans = tuner::ActionLifecycleSpans(orch.SnapshotActions(),
                                           clock.NowMicros());
  const std::string trace_path = "closed_loop_tuner.trace.json";
  if (monitor::ExportChromeTrace(*db.monitor(), spans, trace_path).ok()) {
    std::printf("trace with %zu tuner lifecycle span(s): %s\n", spans.size(),
                trace_path.c_str());
  }
  return 0;
}
