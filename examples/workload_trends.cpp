// Trend analysis over the workload DB (paper §IV-B: "Updates on tables
// are appended and provided with a timestamp to allow trend analysis
// over a longer timespan").
//
// A simulated clock drives several "days" of workload in milliseconds:
// each day the daemon polls and persists snapshots; afterwards plain SQL
// over the wl_* tables shows how statement frequencies, table sizes and
// cache behaviour evolved — and the 7-day retention purge at work.
//
//   ./examples/workload_trends

#include <cstdio>

#include "daemon/daemon.h"
#include "ima/ima.h"
#include "workload/nref.h"

using namespace imon;

int main() {
  SimulatedClock clock(1'000'000'000);  // arbitrary epoch

  engine::DatabaseOptions options;
  options.clock = &clock;
  engine::Database db(options);
  if (!ima::RegisterImaTables(&db).ok()) return 1;

  workload::NrefConfig nref;
  nref.proteins = 2000;
  nref.taxa = 100;
  if (!workload::SetupNref(&db, nref).ok()) return 1;

  engine::DatabaseOptions wl_options;
  wl_options.monitor.enabled = false;
  wl_options.clock = &clock;
  engine::Database workload_db(wl_options);

  daemon::DaemonConfig config;
  config.polls_per_flush = 1;
  config.retention = std::chrono::hours(7 * 24);
  daemon::StorageDaemon storage_daemon(&db, &workload_db, config, &clock);
  if (!storage_daemon.Initialize().ok()) return 1;

  // Ten simulated days; load ramps up over the week.
  auto queries = workload::ComplexQuerySet(nref, 10);
  for (int day = 1; day <= 10; ++day) {
    int statements = 5 + day * 3;  // growing demand
    for (int i = 0; i < statements; ++i) {
      auto r = db.Execute(queries[i % queries.size()]);
      if (!r.ok()) return 1;
      (void)db.Execute(workload::PointQuery(i % nref.proteins));
    }
    if (!storage_daemon.PollOnce().ok()) return 1;
    if (!storage_daemon.PurgeExpired().ok()) return 1;
    clock.AdvanceSeconds(24 * 3600);
  }

  auto run = [&](const char* label, const std::string& sql) {
    auto r = workload_db.Execute(sql);
    if (!r.ok()) {
      std::printf("!! %s: %s\n", label, r.status().ToString().c_str());
      return;
    }
    std::printf("\n%s\n", label);
    std::printf("   ");
    for (const auto& c : r->columns) std::printf("%-22s", c.c_str());
    std::printf("\n");
    for (const auto& row : r->rows) {
      std::printf("   ");
      for (const auto& v : row) std::printf("%-22s", v.ToString().c_str());
      std::printf("\n");
    }
  };

  run("statements executed per captured day (cumulative counter):",
      "SELECT captured_at / 86400000000 AS day, max(statements) "
      "FROM wl_statistics GROUP BY captured_at / 86400000000 "
      "ORDER BY day");
  run("hottest statements over the whole window:",
      "SELECT hash, max(frequency) AS freq FROM wl_statements "
      "GROUP BY hash ORDER BY freq DESC LIMIT 5");
  run("protein table growth trend (pages over time):",
      "SELECT captured_at / 86400000000 AS day, max(data_pages), "
      "max(overflow_pages) FROM wl_tables WHERE table_name = 'protein' "
      "GROUP BY captured_at / 86400000000 ORDER BY day LIMIT 10");
  run("retention check — oldest captured day still stored (7-day window):",
      "SELECT min(captured_at / 86400000000), max(captured_at / 86400000000) "
      "FROM wl_statistics");

  auto stats = storage_daemon.stats();
  std::printf("\ndaemon totals: %lld rows written, %lld purged by "
              "retention\n",
              static_cast<long long>(stats.rows_written),
              static_cast<long long>(stats.rows_purged));
  return 0;
}
