// Quickstart: open a monitored database, run some SQL, then read the
// monitoring data back through IMA — over plain SQL, like any other
// table.
//
//   ./examples/quickstart

#include <cstdio>

#include "engine/database.h"
#include "ima/ima.h"

using imon::engine::Database;
using imon::engine::DatabaseOptions;
using imon::engine::QueryResult;

namespace {

void Run(Database* db, const std::string& sql) {
  auto result = db->Execute(sql);
  if (!result.ok()) {
    std::printf("!! %s\n   %s\n", sql.c_str(),
                result.status().ToString().c_str());
    return;
  }
  std::printf(">> %s\n", sql.c_str());
  if (!result->columns.empty()) {
    std::printf("   ");
    for (const auto& c : result->columns) std::printf("%-18s", c.c_str());
    std::printf("\n");
    for (const auto& row : result->rows) {
      std::printf("   ");
      for (const auto& v : row) std::printf("%-18s", v.ToString().c_str());
      std::printf("\n");
    }
  } else if (!result->message.empty()) {
    std::printf("   %s\n", result->message.c_str());
  }
}

}  // namespace

int main() {
  // 1. An engine with integrated monitoring (on by default) and the IMA
  //    virtual tables registered.
  Database db{DatabaseOptions{}};
  if (!imon::ima::RegisterImaTables(&db).ok()) return 1;

  // 2. Ordinary SQL.
  Run(&db, "CREATE TABLE protein (nref_id INT PRIMARY KEY, sequence TEXT, "
           "seq_length INT)");
  Run(&db, "INSERT INTO protein VALUES (1, 'MKVA', 4), (2, 'ACDEFG', 6), "
           "(3, 'MM', 2)");
  Run(&db, "SELECT nref_id, seq_length FROM protein WHERE seq_length >= 4 "
           "ORDER BY seq_length DESC");
  Run(&db, "SELECT count(*) AS proteins, avg(seq_length) AS avg_len "
           "FROM protein");
  // Run one statement twice so its frequency becomes visible.
  Run(&db, "SELECT sequence FROM protein WHERE nref_id = 2");
  Run(&db, "SELECT sequence FROM protein WHERE nref_id = 2");

  // 3. Everything above was monitored; read it back over SQL.
  std::printf("\n--- what the monitor saw (IMA virtual tables) ---\n");
  Run(&db, "SELECT query_text, frequency FROM imp_statements "
           "ORDER BY frequency DESC LIMIT 5");
  Run(&db, "SELECT hash, est_cost, actual_cost, rows_output FROM "
           "imp_workload ORDER BY seq DESC LIMIT 3");
  Run(&db, "SELECT table_name, storage, row_count, frequency FROM "
           "imp_tables");
  db.SampleSystemStats();
  Run(&db, "SELECT current_sessions, cache_hit_ratio, statements FROM "
           "imp_statistics ORDER BY seq DESC LIMIT 1");
  return 0;
}
