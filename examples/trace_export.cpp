// Trace export: run a small workload, then dump the monitor's stage
// traces (imp_traces) as a Chrome trace-event JSON file loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
//   ./examples/trace_export [output.json]      (default: imon_trace.json)
//
// Driven by scripts/trace_export.sh.

#include <cstdio>
#include <string>

#include "engine/database.h"
#include "ima/ima.h"
#include "monitor/trace_export.h"

using imon::engine::Database;
using imon::engine::DatabaseOptions;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "imon_trace.json";

  Database db{DatabaseOptions{}};
  if (!imon::ima::RegisterImaTables(&db).ok()) return 1;

  auto run = [&](const std::string& sql) {
    auto r = db.Execute(sql);
    if (!r.ok()) {
      std::printf("!! %s\n   %s\n", sql.c_str(),
                  r.status().ToString().c_str());
    }
  };

  run("CREATE TABLE protein (nref_id INT PRIMARY KEY, sequence TEXT, "
      "seq_length INT)");
  run("CREATE TABLE taxonomy (tax_id INT PRIMARY KEY, lineage TEXT)");
  for (int i = 0; i < 50; ++i) {
    run("INSERT INTO protein VALUES (" + std::to_string(i) + ", 'MKVA', " +
        std::to_string(4 + i % 7) + ")");
  }
  for (int i = 0; i < 10; ++i) {
    run("SELECT sequence FROM protein WHERE nref_id = " +
        std::to_string(i * 5));
  }
  run("SELECT count(*) FROM protein WHERE seq_length > 6");

  // The same spans are queryable over SQL ...
  auto traced = db.Execute(
      "SELECT stage, count(*) AS spans FROM imp_traces GROUP BY stage");
  if (traced.ok()) {
    for (const auto& row : traced->rows) {
      std::printf("  %-10s %s spans\n", row[0].ToString().c_str(),
                  row[1].ToString().c_str());
    }
  }

  // ... and exportable for the tracing UI.
  auto status = imon::monitor::ExportChromeTrace(*db.monitor(), out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s — open it in chrome://tracing or "
              "https://ui.perfetto.dev\n",
              out_path.c_str());
  return 0;
}
